//! The commit write-ahead log: segmented, per-lane-group storage.
//!
//! Every globally confirmed block is appended *before* it is applied to
//! the state machine, so a crash between append and apply loses nothing:
//! recovery replays the WAL tail on top of the latest snapshot and
//! re-derives the identical state (execution is deterministic, see
//! [`crate::kv`]).
//!
//! A record stores the block *identity* — `(sn, instance, round, rank)`,
//! the batch coordinates `(first_tx, count, bucket)`, the payload digest
//! and the **lane mask** of the Merkle lanes the block's ops route to —
//! not the payload itself: the synthetic workload derives each
//! transaction's op from its id ([`ladon_types::TxOp::for_id`]), so the
//! identity is sufficient to re-execute. Records are length-prefixed and
//! FNV-checksummed; a torn tail (partial final record, e.g. a crash
//! mid-append) is detected and discarded on load.
//!
//! # Segments, lane groups, and the manifest
//!
//! Storage is a set of **segment files**, never one monolithic log. The
//! [`ladon_types::MERKLE_LANES`] lanes are partitioned into
//! [`WalOptions::lane_groups`] contiguous **lane groups**; each group
//! owns its own segment chain — sealed immutable segments plus one
//! active segment — and a record is appended to the active segment of
//! *every group its lane mask touches* (records are ~100-byte
//! identities, so the duplication is noise next to the payloads they
//! stand for). A small FNV-checksummed **manifest** names the live
//! segment set with each segment's `(group, seq, sn-range, lane mask)`;
//! it is the single source of truth for which files belong to the log,
//! and it is replaced only via temp-file + fsync + atomic rename +
//! directory fsync.
//!
//! The layout buys two things:
//!
//! - **Crash-safe compaction.** Dropping the snapshot-covered prefix
//!   writes *new* segment files for any straddling tail, atomically
//!   publishes a manifest naming the new set, and only then deletes the
//!   old files — in-place truncation never happens, so a crash at any
//!   byte of the protocol leaves either the complete old log or the
//!   complete new one on disk (plus ignorable orphans).
//! - **Partial recovery.** A snapshot covers every record below its
//!   `applied` frontier, so recovery skips — without reading — every
//!   segment whose `last_sn` sits below that floor, and a lane group
//!   whose chain holds no tail records contributes nothing. Replay work
//!   is proportional to the dirty tail, not to the total log length
//!   (`fig_recovery_scaling` asserts exactly this with deterministic
//!   record counts).
//!
//! # Group commit
//!
//! The write path is built around explicit **durability barriers**, not
//! per-record fsyncs. [`CommitWal::append_buffered`] stages a record's
//! encoding into a per-lane-group scratch buffer (no backend I/O, no
//! steady-state allocation); [`CommitWal::flush`] then writes each
//! touched group's staged bytes with **one** write and **one** fsync per
//! group — however many records the batch held — via the backend's
//! [`WalBackend::append_segment_batch`] / [`WalBackend::sync_group`]
//! split. A record is **acknowledged only after its batch's flush**
//! returns: a crash between staging and flush loses only unacknowledged
//! records, never a previously-flushed one (the crash matrix in
//! `tests/state_execution.rs` sweeps a kill across exactly this
//! boundary). [`CommitWal::append`] remains as the batch-of-one
//! composition of the two.
//!
//! Every contiguous run a flush appends (and every compaction rewrite)
//! is closed by a checksummed **batch trailer** ([`TRAILER_LEN`] bytes:
//! marker + segment record count + FNV), so a segment's byte stream
//! ends at an *acknowledgement boundary* after every clean flush.
//! Recovery uses it to classify damage ([`SegmentDecode`]): a stream
//! that ends exactly at a trailer is a **clean end of log** — a
//! manifest-count shortfall there can only be a suffix that was never
//! durably appended as part of an acknowledged batch
//! (`records_unacked_lost`, e.g. a failed write that already raised the
//! durability alarm) — while a stream that tears mid-record or
//! mid-batch reports genuinely acknowledged loss (`records_torn`).
//!
//! Storage is pluggable behind [`WalBackend`]: [`MemBackend`] keeps the
//! segment set in memory (simulation, tests), [`FileBackend`] maps it
//! onto a directory of `wal-g*-*.seg` files, holding one cached open
//! handle per group's active segment (opened once per segment lifetime,
//! not per append) and fsyncing at group-sync barriers (examples,
//! benches, durable deployments). Every backend keeps deterministic
//! write/fsync/open counters ([`WalIoStats`], same spirit as the crypto
//! op counters) so benches and CI gate on *counts*, never wall-clock.
//! The WAL itself is sans-IO: it encodes/decodes records, segments and
//! manifests; the backend moves bytes.

use ladon_crypto::fnv::Fnv64;
use ladon_types::{Batch, Block, Digest, MERKLE_LANES};
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Record format version (first byte of every record body). v2 adds the
/// 64-bit lane mask; v1 records (no mask) are rejected, which reads as a
/// corrupt log — pre-segment WAL files are not carried forward.
const WAL_VERSION: u8 = 2;
/// Encoded body size: version + sn + instance + round + rank + first_tx +
/// count + bucket + payload_bytes + lane_mask + digest.
const BODY_LEN: usize = 1 + 8 + 4 + 8 + 8 + 8 + 4 + 4 + 8 + 8 + 32;

/// Every record encodes to this exact size (length prefix + body +
/// checksum) — what lets a staged batch be split across a segment roll
/// without re-encoding.
pub const ENCODED_RECORD_LEN: usize = 4 + BODY_LEN + 8;

/// Length-prefix sentinel opening a **batch trailer** (can never collide
/// with a record's `BODY_LEN` prefix).
const TRAILER_MARK: u32 = u32::MAX;

/// Encoded batch-trailer size: marker + segment record count + checksum.
/// A trailer closes every contiguous run a flush appends to a segment,
/// so a segment stream that ends exactly at a trailer ends at an
/// **acknowledgement boundary** — recovery reads that as "clean end of
/// log", while a stream ending mid-record or mid-batch reads as a torn
/// in-flight write (see [`SegmentDecode`]).
pub const TRAILER_LEN: usize = 4 + 4 + 8;

/// The encoded batch trailer claiming `count` records now in the
/// segment.
fn trailer_bytes(count: u32) -> [u8; TRAILER_LEN] {
    let mut out = [0u8; TRAILER_LEN];
    out[0..4].copy_from_slice(&TRAILER_MARK.to_le_bytes());
    out[4..8].copy_from_slice(&count.to_le_bytes());
    let sum = Fnv64::new().write(&out[0..8]).finish();
    out[8..16].copy_from_slice(&sum.to_le_bytes());
    out
}

/// Appends a batch trailer claiming `count` records now in the segment.
fn encode_trailer(count: u32, out: &mut Vec<u8>) {
    out.extend_from_slice(&trailer_bytes(count));
}

/// Manifest format version (first byte of the manifest file).
const MANIFEST_VERSION: u8 = 1;

/// Tuning knobs for the segmented layout (see
/// [`ladon_types::SystemConfig::wal_segment_records`] /
/// [`ladon_types::SystemConfig::wal_lane_groups`] for the config
/// surface).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalOptions {
    /// Contiguous lane groups the [`MERKLE_LANES`] lanes are partitioned
    /// into; each owns an independent segment chain. Clamped to
    /// `1..=MERKLE_LANES`. The layout is fixed at log creation: reopening
    /// an existing log adopts the group count recorded in its manifest,
    /// so a changed knob takes effect on fresh logs only.
    pub lane_groups: u32,
    /// Records an active segment holds before it is sealed and the group
    /// rolls to a fresh one. Clamped to ≥ 1.
    pub segment_records: u32,
}

impl Default for WalOptions {
    fn default() -> Self {
        Self {
            lane_groups: 8,
            segment_records: 1024,
        }
    }
}

impl WalOptions {
    fn normalized(self) -> Self {
        Self {
            lane_groups: self.lane_groups.clamp(1, MERKLE_LANES),
            segment_records: self.segment_records.max(1),
        }
    }
}

/// The lane group a lane belongs to: contiguous ranges of
/// `MERKLE_LANES / groups` lanes.
#[inline]
pub fn group_of_lane(lane: u32, groups: u32) -> u32 {
    (lane as u64 * groups as u64 / MERKLE_LANES as u64) as u32
}

/// The groups a record's lane mask touches, as a group bitmask. A record
/// that routed no ops to any lane (an empty block) is homed to group 0 so
/// the global log stays dense in every recovery.
fn groups_of_mask(lane_mask: u64, groups: u32) -> u64 {
    if lane_mask == 0 {
        return 1;
    }
    let mut out = 0u64;
    let mut mask = lane_mask;
    while mask != 0 {
        let lane = mask.trailing_zeros();
        out |= 1 << group_of_lane(lane, groups);
        mask &= mask - 1;
    }
    out
}

/// One confirmed-block entry in the commit log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// Global ordering index of the block.
    pub sn: u64,
    /// Producing instance.
    pub instance: u32,
    /// Round within the instance.
    pub round: u64,
    /// Block rank.
    pub rank: u64,
    /// First transaction id of the batch.
    pub first_tx: u64,
    /// Number of transactions.
    pub count: u32,
    /// Bucket the batch was cut from.
    pub bucket: u32,
    /// Total payload bytes (bandwidth accounting on replay).
    pub payload_bytes: u64,
    /// Bitmask of the Merkle lanes the block's ops route to (bit `l` =
    /// lane `l`; [`MERKLE_LANES`] ≤ 64 by construction). Computed
    /// statically from the derived ops *before* execution — a
    /// conservative superset of the lanes the block dirties (a clamped
    /// empty transfer still sets its target lane's bit) — and the key
    /// that routes the record to lane-group segment chains.
    pub lane_mask: u64,
    /// Payload digest (integrity binding to the consensus artifact).
    pub payload_digest: Digest,
}

impl WalRecord {
    /// Builds the record for confirmed block `sn` with the lane routing
    /// mask of its derived ops.
    pub fn of_block(sn: u64, block: &Block, lane_mask: u64) -> Self {
        Self {
            sn,
            instance: block.index().0,
            round: block.round().0,
            rank: block.rank().0,
            first_tx: block.batch.first_tx.0,
            count: block.batch.count,
            bucket: block.batch.bucket,
            payload_bytes: block.batch.payload_bytes,
            lane_mask,
            payload_digest: block.header.payload_digest,
        }
    }

    /// The batch this record re-materializes for replay.
    pub fn batch(&self) -> Batch {
        Batch {
            first_tx: ladon_types::TxId(self.first_tx),
            count: self.count,
            payload_bytes: self.payload_bytes,
            arrival_sum_ns: 0,
            earliest_arrival: ladon_types::TimeNs::ZERO,
            bucket: self.bucket,
            refs: Vec::new(),
        }
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        let mut body = [0u8; BODY_LEN];
        let mut at = 0usize;
        let mut put = |bytes: &[u8]| {
            body[at..at + bytes.len()].copy_from_slice(bytes);
            at += bytes.len();
        };
        put(&[WAL_VERSION]);
        put(&self.sn.to_le_bytes());
        put(&self.instance.to_le_bytes());
        put(&self.round.to_le_bytes());
        put(&self.rank.to_le_bytes());
        put(&self.first_tx.to_le_bytes());
        put(&self.count.to_le_bytes());
        put(&self.bucket.to_le_bytes());
        put(&self.payload_bytes.to_le_bytes());
        put(&self.lane_mask.to_le_bytes());
        put(&self.payload_digest.0);
        debug_assert_eq!(at, BODY_LEN);
        let checksum = Fnv64::new().write(&body).finish();
        out.extend_from_slice(&(BODY_LEN as u32).to_le_bytes());
        out.extend_from_slice(&body);
        out.extend_from_slice(&checksum.to_le_bytes());
    }

    fn decode(body: &[u8]) -> Option<Self> {
        if body.len() != BODY_LEN || body[0] != WAL_VERSION {
            return None;
        }
        let mut at = 1usize;
        let mut take = |n: usize| {
            let s = &body[at..at + n];
            at += n;
            s
        };
        let u64le = |s: &[u8]| u64::from_le_bytes(s.try_into().unwrap());
        let u32le = |s: &[u8]| u32::from_le_bytes(s.try_into().unwrap());
        let sn = u64le(take(8));
        let instance = u32le(take(4));
        let round = u64le(take(8));
        let rank = u64le(take(8));
        let first_tx = u64le(take(8));
        let count = u32le(take(4));
        let bucket = u32le(take(4));
        let payload_bytes = u64le(take(8));
        let lane_mask = u64le(take(8));
        let mut digest = [0u8; 32];
        digest.copy_from_slice(take(32));
        Some(Self {
            sn,
            instance,
            round,
            rank,
            first_tx,
            count,
            bucket,
            payload_bytes,
            lane_mask,
            payload_digest: Digest(digest),
        })
    }
}

/// What decoding one segment stream yielded: the intact records plus the
/// acknowledgement-boundary classification the batch trailers provide.
#[derive(Clone, Debug, Default)]
pub struct SegmentDecode {
    /// Every intact record, in stream order (trailers skipped).
    pub records: Vec<WalRecord>,
    /// The record count claimed by the last intact trailer (0 when the
    /// stream holds none).
    pub last_trailer_count: u32,
    /// True when the stream was consumed completely and ended exactly at
    /// a trailer (or was empty): a **clean end of log** — every byte
    /// after the last acknowledged batch is accounted for. False means
    /// the stream tore mid-record or mid-batch (a crashed in-flight
    /// write, or corruption).
    pub clean_end: bool,
}

/// Decodes a segment stream: every intact record, stopping at the first
/// torn or corrupt entry (everything after a bad checksum is untrusted),
/// while tracking the batch-trailer acknowledgement boundaries.
pub fn decode_segment(bytes: &[u8]) -> SegmentDecode {
    let mut out = SegmentDecode {
        clean_end: true, // an empty stream is clean
        ..SegmentDecode::default()
    };
    let mut at = 0usize;
    let mut at_boundary = true;
    while at + 4 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
        if len == TRAILER_MARK {
            if at + TRAILER_LEN > bytes.len() {
                at_boundary = false;
                break; // torn trailer
            }
            let expect = u64::from_le_bytes(bytes[at + 8..at + 16].try_into().unwrap());
            if Fnv64::new().write(&bytes[at..at + 8]).finish() != expect {
                at_boundary = false;
                break; // corrupt trailer: stop trusting the tail
            }
            out.last_trailer_count = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().unwrap());
            at += TRAILER_LEN;
            at_boundary = true;
            continue;
        }
        let len = len as usize;
        let body_start = at + 4;
        let sum_start = body_start + len;
        if len != BODY_LEN || sum_start + 8 > bytes.len() {
            at_boundary = false;
            break; // torn tail
        }
        let body = &bytes[body_start..sum_start];
        let expect = u64::from_le_bytes(bytes[sum_start..sum_start + 8].try_into().unwrap());
        if Fnv64::new().write(body).finish() != expect {
            at_boundary = false;
            break; // corrupt record: stop trusting the tail
        }
        match WalRecord::decode(body) {
            Some(r) => out.records.push(r),
            None => {
                at_boundary = false;
                break;
            }
        }
        at = sum_start + 8;
        at_boundary = false; // a record not yet closed by its trailer
    }
    out.clean_end = at == bytes.len() && at_boundary;
    out
}

/// Decodes every intact record in `bytes` (trailer bookkeeping
/// discarded; also accepts trailer-free flat streams like
/// [`CommitWal::to_bytes`]).
pub fn decode_records(bytes: &[u8]) -> Vec<WalRecord> {
    decode_segment(bytes).records
}

// ---------------------------------------------------------------------
// Segment metadata and the manifest
// ---------------------------------------------------------------------

/// Manifest entry for one live segment file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentMeta {
    /// Owning lane group.
    pub group: u32,
    /// Monotonic sequence number (unique across groups; names the file).
    pub seq: u64,
    /// Lowest record `sn` in the segment (meaningless when `records`
    /// is 0).
    pub first_sn: u64,
    /// Highest record `sn` in the segment.
    pub last_sn: u64,
    /// Records in the segment. For the active segment this is the count
    /// at the last manifest publish; the true count is re-derived from
    /// the file on open (appends do not rewrite the manifest).
    pub records: u32,
    /// Union of the member records' lane masks.
    pub lane_mask: u64,
    /// Sealed segments are immutable; exactly one unsealed (active)
    /// segment may exist per group.
    pub sealed: bool,
}

impl SegmentMeta {
    fn fresh(group: u32, seq: u64) -> Self {
        Self {
            group,
            seq,
            first_sn: 0,
            last_sn: 0,
            records: 0,
            lane_mask: 0,
            sealed: false,
        }
    }

    fn absorb(&mut self, rec: &WalRecord) {
        if self.records == 0 {
            self.first_sn = rec.sn;
        }
        self.last_sn = rec.sn;
        self.records += 1;
        self.lane_mask |= rec.lane_mask;
    }
}

/// What a rotation does with one live segment (see
/// [`CommitWal::rotate_segments`]).
enum SegmentFate {
    /// Untouched; carried into the new manifest.
    Keep,
    /// Dropped entirely (every record is outside the surviving set).
    Delete,
    /// Replaced by a fresh file holding the mirror's records in
    /// `first..=last` that route to the segment's group.
    Rewrite {
        /// First surviving `sn` (inclusive).
        first: u64,
        /// Last surviving `sn` (inclusive).
        last: u64,
    },
}

/// The manifest: the authoritative live segment set.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct Manifest {
    /// Next unused segment sequence number.
    next_seq: u64,
    /// The lane-group count the segment chains were laid out with (0 =
    /// fresh/absent manifest). The layout is a *disk* property: a WAL
    /// reopened under a different configured group count adopts this
    /// value, otherwise record→group routing (appends, compaction
    /// rewrites) would silently disagree with where the records live.
    lane_groups: u32,
    /// Live segments, ascending `(group, seq)`.
    segments: Vec<SegmentMeta>,
}

impl Manifest {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(1 + 8 + 4 + 8 + self.segments.len() * 45 + 8);
        out.push(MANIFEST_VERSION);
        out.extend_from_slice(&self.next_seq.to_le_bytes());
        out.extend_from_slice(&self.lane_groups.to_le_bytes());
        out.extend_from_slice(&(self.segments.len() as u64).to_le_bytes());
        for s in &self.segments {
            out.extend_from_slice(&s.group.to_le_bytes());
            out.extend_from_slice(&s.seq.to_le_bytes());
            out.extend_from_slice(&s.first_sn.to_le_bytes());
            out.extend_from_slice(&s.last_sn.to_le_bytes());
            out.extend_from_slice(&s.records.to_le_bytes());
            out.extend_from_slice(&s.lane_mask.to_le_bytes());
            out.push(s.sealed as u8);
        }
        let checksum = Fnv64::new().write(&out).finish();
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 1 + 16 + 8 || bytes[0] != MANIFEST_VERSION {
            return None;
        }
        let (payload, sum) = bytes.split_at(bytes.len() - 8);
        if Fnv64::new().write(payload).finish() != u64::from_le_bytes(sum.try_into().ok()?) {
            return None;
        }
        let mut at = 1usize;
        let mut take = |n: usize| {
            let s = payload.get(at..at + n)?;
            at += n;
            Some(s)
        };
        let next_seq = u64::from_le_bytes(take(8)?.try_into().ok()?);
        let lane_groups = u32::from_le_bytes(take(4)?.try_into().ok()?);
        let count = u64::from_le_bytes(take(8)?.try_into().ok()?) as usize;
        if count > 1 << 20 {
            return None;
        }
        let mut segments = Vec::with_capacity(count.min(1 << 12));
        for _ in 0..count {
            let group = u32::from_le_bytes(take(4)?.try_into().ok()?);
            let seq = u64::from_le_bytes(take(8)?.try_into().ok()?);
            let first_sn = u64::from_le_bytes(take(8)?.try_into().ok()?);
            let last_sn = u64::from_le_bytes(take(8)?.try_into().ok()?);
            let records = u32::from_le_bytes(take(4)?.try_into().ok()?);
            let lane_mask = u64::from_le_bytes(take(8)?.try_into().ok()?);
            let sealed = take(1)?[0] != 0;
            segments.push(SegmentMeta {
                group,
                seq,
                first_sn,
                last_sn,
                records,
                lane_mask,
                sealed,
            });
        }
        Some(Self {
            next_seq,
            lane_groups,
            segments,
        })
    }
}

// ---------------------------------------------------------------------
// Storage backends
// ---------------------------------------------------------------------

/// Deterministic I/O accounting kept by every [`WalBackend`] — syscall
/// counts, not wall-clock, in the same spirit as the crypto op counters
/// ([`ladon_crypto::counters`]), but per-backend so each replica's WAL is
/// individually attributable. `fig_wal_group_commit` gates on these:
/// fsyncs per flushed batch, segment opens per segment lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalIoStats {
    /// Staged segment writes ([`WalBackend::append_segment_batch`]
    /// calls — one per touched group per flushed batch, however many
    /// records the batch held).
    pub appends: u64,
    /// Durability barriers actually issued (`fsync`/`fdatasync`-class
    /// syscalls: group syncs, whole-file rewrites, manifest publishes,
    /// directory syncs).
    pub fsyncs: u64,
    /// Segment file handles opened for appending — O(segments) under the
    /// active-handle cache, where the old open-per-append design was
    /// O(appends).
    pub segment_opens: u64,
    /// Total segment payload bytes written (appends + rewrites).
    pub bytes_written: u64,
}

impl ladon_obs::SnapshotInto for WalIoStats {
    fn snapshot_into(&self, registry: &mut ladon_obs::MetricsRegistry) {
        registry.counter("wal.appends", self.appends);
        registry.counter("wal.fsyncs", self.fsyncs);
        registry.counter("wal.segment_opens", self.segment_opens);
        registry.counter("wal.bytes_written", self.bytes_written);
    }
}

/// Segment-file storage behind a [`CommitWal`].
///
/// Every mutating operation returns `false` on failure; the WAL treats a
/// failed write as a durability alarm ([`CommitWal::write_failures`]),
/// keeps its in-memory mirror authoritative, and repairs the backend at
/// the next successful compaction. The contract the group-commit and
/// compaction protocols lean on: [`Self::publish_manifest`] replaces the
/// manifest *atomically* (a reader sees the old bytes or the new bytes,
/// never a mix); [`Self::write_segment`] is durable (fsynced) before it
/// returns `true`; and a staged [`Self::append_segment_batch`] is
/// guaranteed durable only once the group's next [`Self::sync_group`]
/// returns `true` — the fsync barrier group commit amortizes over a
/// whole batch of appends.
pub trait WalBackend: Send {
    /// Stages one run — `records` followed by its closing batch
    /// `trailer` — at the end of segment `seq` of `group`, creating the
    /// file if absent. Two slices so the (large) record bytes stream
    /// straight from the flush's staging buffer with no concatenation
    /// copy; backends write them back-to-back as one logical append.
    /// **Not durable** until the group's next [`Self::sync_group`] — a
    /// crash before the barrier may lose the staged suffix (it reads
    /// back as a torn tail).
    fn append_segment_batch(
        &mut self,
        group: u32,
        seq: u64,
        records: &[u8],
        trailer: &[u8],
    ) -> bool;
    /// Durability barrier: forces every staged append in `group` to
    /// stable storage. One fsync per touched group per flushed batch —
    /// the whole point of group commit.
    fn sync_group(&mut self, group: u32) -> bool;
    /// Creates-or-replaces segment `seq` of `group` with exactly `bytes`,
    /// durably (compaction rewrite target; truncates any orphan at the
    /// name).
    fn write_segment(&mut self, group: u32, seq: u64, bytes: &[u8]) -> bool;
    /// Reads a whole segment back (`None` when missing/unreadable).
    fn read_segment(&mut self, group: u32, seq: u64) -> Option<Vec<u8>>;
    /// Deletes a segment file (idempotent).
    fn delete_segment(&mut self, group: u32, seq: u64) -> bool;
    /// Atomically replaces the manifest.
    fn publish_manifest(&mut self, bytes: &[u8]) -> bool;
    /// Reads the current manifest (`None` when absent).
    fn load_manifest(&mut self) -> Option<Vec<u8>>;
    /// Every segment present in storage, referenced by the manifest or
    /// not (orphan discovery after a mid-compaction crash).
    fn list_segments(&mut self) -> Vec<(u32, u64)>;
    /// The backend's deterministic I/O counters since construction.
    fn io_stats(&self) -> WalIoStats;
    /// Whether [`CommitWal`] should run this backend's flush barriers on
    /// a dedicated writer thread (pipelined durability). File-backed
    /// logs say yes — their fsync latency is worth overlapping with
    /// execution; in-memory backends say no, keeping every seeded
    /// simulation run bit-deterministic with the writer inline.
    fn prefers_writer_thread(&self) -> bool {
        false
    }
}

/// In-memory backend (simulation and tests). Storage never tears, but
/// the counters model the real-disk boundary — a staged append costs a
/// write, durability costs one fsync per [`Self::sync_group`] barrier,
/// and an "open" is charged exactly where [`FileBackend`]'s handle cache
/// would miss — so simulated replicas report the same deterministic I/O
/// shape a file-backed deployment would.
#[derive(Default, Clone, Debug)]
pub struct MemBackend {
    segments: BTreeMap<(u32, u64), Vec<u8>>,
    manifest: Option<Vec<u8>>,
    /// Groups with staged appends since their last sync barrier (fsync
    /// accounting: a barrier over a clean group is free).
    dirty_groups: std::collections::BTreeSet<u32>,
    /// The segment each group's appends currently target — the abstract
    /// mirror of [`FileBackend`]'s handle cache, so `segment_opens`
    /// counts cache misses identically (one per segment lifetime, plus a
    /// re-open if a rewrite/delete evicts the tracked segment).
    append_target: BTreeMap<u32, u64>,
    stats: WalIoStats,
}

impl WalBackend for MemBackend {
    fn append_segment_batch(
        &mut self,
        group: u32,
        seq: u64,
        records: &[u8],
        trailer: &[u8],
    ) -> bool {
        if self.append_target.get(&group) != Some(&seq) {
            // Model the roll's sync-before-evict: a dirty previous
            // target is synced before its handle is dropped.
            self.sync_group(group);
            self.append_target.insert(group, seq);
            self.stats.segment_opens += 1;
        }
        let seg = self.segments.entry((group, seq)).or_default();
        seg.extend_from_slice(records);
        seg.extend_from_slice(trailer);
        self.stats.appends += 1;
        self.stats.bytes_written += (records.len() + trailer.len()) as u64;
        self.dirty_groups.insert(group);
        true
    }
    fn sync_group(&mut self, group: u32) -> bool {
        if self.dirty_groups.remove(&group) {
            self.stats.fsyncs += 1;
        }
        true
    }
    fn write_segment(&mut self, group: u32, seq: u64, bytes: &[u8]) -> bool {
        if self.append_target.get(&group) == Some(&seq) {
            self.append_target.remove(&group); // handle-cache eviction
        }
        self.segments.insert((group, seq), bytes.to_vec());
        // Models file fsync + directory fsync of the durable rewrite.
        self.stats.fsyncs += 2;
        self.stats.bytes_written += bytes.len() as u64;
        true
    }
    fn read_segment(&mut self, group: u32, seq: u64) -> Option<Vec<u8>> {
        self.segments.get(&(group, seq)).cloned()
    }
    fn delete_segment(&mut self, group: u32, seq: u64) -> bool {
        if self.append_target.get(&group) == Some(&seq) {
            self.append_target.remove(&group);
        }
        self.segments.remove(&(group, seq));
        self.stats.fsyncs += 1; // models the directory fsync
        true
    }
    fn publish_manifest(&mut self, bytes: &[u8]) -> bool {
        self.manifest = Some(bytes.to_vec());
        self.stats.fsyncs += 2; // models temp-file fsync + dir fsync
        true
    }
    fn load_manifest(&mut self) -> Option<Vec<u8>> {
        self.manifest.clone()
    }
    fn list_segments(&mut self) -> Vec<(u32, u64)> {
        self.segments.keys().copied().collect()
    }
    fn io_stats(&self) -> WalIoStats {
        self.stats
    }
}

/// One cached open active-segment handle of a [`FileBackend`] group.
struct ActiveHandle {
    seq: u64,
    file: std::fs::File,
    /// Written-to since the last sync barrier.
    dirty: bool,
}

/// Directory-backed storage: `wal-g<group>-<seq>.seg` segment files plus
/// a `wal.manifest`, all under one directory. Each group's active
/// segment is appended through a **cached open handle** — opened once
/// when the segment becomes active, reused for its whole lifetime, and
/// invalidated on roll, rewrite, or delete — instead of an
/// open-per-append. Staged appends become durable at the group's
/// [`WalBackend::sync_group`] barrier (`sync_data`); rewrites fsync
/// before reporting success; the manifest is replaced via temp-file +
/// fsync + rename + directory fsync, so a crash leaves either the old or
/// the new manifest intact.
pub struct FileBackend {
    dir: PathBuf,
    /// Cached open handle of each group's current append target (at most
    /// one active segment per group by WAL invariant).
    active: std::collections::HashMap<u32, ActiveHandle>,
    stats: WalIoStats,
}

impl FileBackend {
    /// Opens (creating if needed) the segment directory.
    pub fn open_dir(dir: impl AsRef<Path>) -> std::io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            active: std::collections::HashMap::new(),
            stats: WalIoStats::default(),
        })
    }

    /// The backing directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file name of segment `(group, seq)`.
    pub fn segment_name(group: u32, seq: u64) -> String {
        format!("wal-g{group:02}-{seq:08}.seg")
    }

    fn segment_path(&self, group: u32, seq: u64) -> PathBuf {
        self.dir.join(Self::segment_name(group, seq))
    }

    /// Makes directory metadata (created/renamed/deleted names) durable.
    fn sync_dir(&mut self) -> std::io::Result<()> {
        std::fs::File::open(&self.dir)?.sync_all()?;
        self.stats.fsyncs += 1;
        Ok(())
    }

    /// Drops the cached handle for `(group, seq)` if one is held — the
    /// segment is being rewritten or deleted out from under it.
    fn evict(&mut self, group: u32, seq: u64) {
        if self.active.get(&group).is_some_and(|h| h.seq == seq) {
            self.active.remove(&group);
        }
    }
}

impl WalBackend for FileBackend {
    fn append_segment_batch(
        &mut self,
        group: u32,
        seq: u64,
        records: &[u8],
        trailer: &[u8],
    ) -> bool {
        // A different seq means the group rolled: the previous active
        // sealed. Its staged bytes must be durable before the handle is
        // dropped, or a "clean" flush could still lose them.
        if self.active.get(&group).is_some_and(|h| h.seq != seq) {
            if !self.sync_group(group) {
                return false;
            }
            self.active.remove(&group);
        }
        if !self.active.contains_key(&group) {
            match std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(self.segment_path(group, seq))
            {
                Ok(file) => {
                    self.stats.segment_opens += 1;
                    self.active.insert(
                        group,
                        ActiveHandle {
                            seq,
                            file,
                            dirty: false,
                        },
                    );
                }
                Err(_) => return false,
            }
        }
        let h = self.active.get_mut(&group).expect("just inserted");
        // Two writes on the cached handle, zero concatenation copies:
        // the record bytes stream straight from the staging buffer. A
        // torn boundary between the two is indistinguishable from any
        // other mid-run tear and is handled identically on load.
        match h
            .file
            .write_all(records)
            .and_then(|()| h.file.write_all(trailer))
        {
            Ok(()) => {
                h.dirty = true;
                self.stats.appends += 1;
                self.stats.bytes_written += (records.len() + trailer.len()) as u64;
                true
            }
            Err(_) => false,
        }
    }

    fn sync_group(&mut self, group: u32) -> bool {
        // `sync_data`, not just flush: `File` has no userspace buffer, so
        // `flush()` is a no-op and an OS crash could lose acknowledged
        // records. `sync_data` forces the bytes (and the size metadata
        // needed to read them back) to stable storage.
        let Some(h) = self.active.get_mut(&group) else {
            return true; // nothing staged for the group
        };
        if !h.dirty {
            return true;
        }
        match h.file.sync_data() {
            Ok(()) => {
                h.dirty = false;
                self.stats.fsyncs += 1;
                true
            }
            Err(_) => false,
        }
    }

    fn write_segment(&mut self, group: u32, seq: u64, bytes: &[u8]) -> bool {
        self.evict(group, seq);
        let path = self.segment_path(group, seq);
        let run = |be: &mut Self| -> std::io::Result<()> {
            let mut f = std::fs::File::create(&path)?;
            f.write_all(bytes)?;
            f.sync_all()?;
            be.stats.fsyncs += 1;
            be.stats.bytes_written += bytes.len() as u64;
            be.sync_dir()
        };
        run(self).is_ok()
    }

    fn read_segment(&mut self, group: u32, seq: u64) -> Option<Vec<u8>> {
        std::fs::read(self.segment_path(group, seq)).ok()
    }

    fn delete_segment(&mut self, group: u32, seq: u64) -> bool {
        self.evict(group, seq);
        match std::fs::remove_file(self.segment_path(group, seq)) {
            Ok(()) => self.sync_dir().is_ok(),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => true,
            Err(_) => false,
        }
    }

    fn publish_manifest(&mut self, bytes: &[u8]) -> bool {
        let tmp = self.dir.join("wal.manifest.tmp");
        let dst = self.dir.join("wal.manifest");
        let run = |be: &mut Self| -> std::io::Result<()> {
            {
                let mut f = std::fs::File::create(&tmp)?;
                f.write_all(bytes)?;
                f.sync_all()?;
                be.stats.fsyncs += 1;
            }
            std::fs::rename(&tmp, &dst)?;
            be.sync_dir()
        };
        run(self).is_ok()
    }

    fn load_manifest(&mut self) -> Option<Vec<u8>> {
        // Only a confirmed NotFound means "fresh log". Any other read
        // error must surface as present-but-undecodable (empty bytes
        // never decode), routing the caller into scan recovery instead
        // of the orphan sweep that a "fresh" answer would license.
        match std::fs::read(self.dir.join("wal.manifest")) {
            Ok(bytes) => Some(bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(_) => Some(Vec::new()),
        }
    }

    fn list_segments(&mut self) -> Vec<(u32, u64)> {
        let mut out = Vec::new();
        let Ok(rd) = std::fs::read_dir(&self.dir) else {
            return out;
        };
        for entry in rd.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let Some(rest) = name
                .strip_prefix("wal-g")
                .and_then(|s| s.strip_suffix(".seg"))
            else {
                continue;
            };
            let Some((g, s)) = rest.split_once('-') else {
                continue;
            };
            if let (Ok(group), Ok(seq)) = (g.parse(), s.parse()) {
                out.push((group, seq));
            }
        }
        out.sort_unstable();
        out
    }

    fn io_stats(&self) -> WalIoStats {
        self.stats
    }

    fn prefers_writer_thread(&self) -> bool {
        true
    }
}

// ---------------------------------------------------------------------
// The WAL manager
// ---------------------------------------------------------------------

/// What [`CommitWal::open_with_floor`] did: segment- and record-level
/// accounting of the load, the raw material for recovery reporting
/// ([`crate::pipeline::ReplayStats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalLoadStats {
    /// Segments read and decoded.
    pub segments_scanned: u64,
    /// Segments skipped without reading: their `last_sn` sat below the
    /// snapshot-covered floor.
    pub segments_skipped: u64,
    /// Distinct records loaded into the mirror (deduplicated across lane
    /// groups).
    pub records_loaded: u64,
    /// Records discarded because they sat below the floor (straddling
    /// segments keep covered records on disk until compaction).
    pub records_below_floor: u64,
    /// Records lost from a segment whose stream **tore mid-batch** (did
    /// not end at a batch trailer), measured against the manifest's
    /// last-published count (a lower bound of what was durably appended;
    /// duplicates in other groups may still have recovered the records).
    pub records_torn: u64,
    /// Manifest-counted records missing from a segment whose stream ends
    /// **cleanly at a batch trailer**: every acknowledged batch is fully
    /// present, so the shortfall is a suffix that was absorbed into the
    /// metadata but never durably appended as part of an acknowledged
    /// batch (e.g. a failed write that already raised the durability
    /// alarm) — never-acknowledged records, no longer miscounted as
    /// torn.
    pub records_unacked_lost: u64,
    /// Scanned segments whose stream ended exactly at a batch trailer —
    /// a clean end of log (normal shutdown, or a crash strictly between
    /// batch flushes).
    pub segments_clean_end: u64,
    /// True when a manifest file existed but failed to decode, and the
    /// live set was rebuilt by scanning every segment on disk. Data is
    /// preserved (nothing is swept as an orphan in this mode), but the
    /// skip-unread optimization is unavailable for this open and the
    /// event deserves operator attention.
    pub manifest_recovered: bool,
}

/// The writer back half of the commit log: owns the storage backend,
/// the live segment set (manifest mirror), segment rolls, and manifest
/// publication. In pipelined mode the whole struct shuttles to a
/// dedicated writer thread for each flush barrier and comes back with
/// the barrier's outcome; in simulation it stays on the caller and the
/// barrier runs inline.
struct WalBack {
    backend: Box<dyn WalBackend>,
    opts: WalOptions,
    /// The live segment set (manifest mirror), ascending `(group, seq)`.
    segments: Vec<SegmentMeta>,
    /// Next unused segment sequence number.
    next_seq: u64,
    /// Backend writes that reported failure. The in-memory mirror stays
    /// authoritative, and the next successful compaction rewrites the
    /// backend from it, repairing earlier losses — but a crash while this
    /// is nonzero may lose the affected records, so operators must treat
    /// it as a durability alarm.
    write_failures: u64,
}

/// One flush barrier's worth of double-buffered stage scratch: the
/// per-group record encodings plus the records behind them. Shuttles to
/// the writer with its [`WalBack`] and returns emptied (capacity
/// retained) for reuse, so staging never blocks on an in-flight flush
/// and steady-state flushing allocates nothing.
struct FlushJob {
    bytes: Vec<Vec<u8>>,
    recs: Vec<Vec<WalRecord>>,
}

impl FlushJob {
    fn empty(groups: usize) -> Self {
        Self {
            bytes: vec![Vec::new(); groups],
            recs: vec![Vec::new(); groups],
        }
    }
}

/// The dedicated writer thread (pipelined mode only): receives
/// `(back, job)` per submitted barrier, runs the write+fsync barrier,
/// and sends `(back, job, ok)` home. Depth is at most one in flight —
/// the front cannot submit again until it completed the previous
/// barrier, because the back itself is on the writer.
struct WalWriter {
    submit: std::sync::mpsc::Sender<(WalBack, FlushJob)>,
    done: std::sync::mpsc::Receiver<(WalBack, FlushJob, bool)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// A submitted-but-uncompleted flush barrier: the records it carries
/// are **not acknowledged** (absent from the mirror) until
/// [`CommitWal::complete_flush`] resolves the barrier token.
enum InFlightFlush {
    /// Inline mode (simulation): the barrier already ran at submit time;
    /// its outcome is parked here so acknowledgement still happens at
    /// complete time — the pipeline observes the identical submit/apply
    /// structure in both modes, keeping seeded runs bit-deterministic.
    Done { ok: bool, records: Vec<WalRecord> },
    /// Pipelined mode: the back (and the batch's bytes) are on the
    /// writer thread; completing blocks until it reports.
    Sent { records: Vec<WalRecord> },
}

impl InFlightFlush {
    fn records(&self) -> &[WalRecord] {
        match self {
            InFlightFlush::Done { records, .. } | InFlightFlush::Sent { records } => records,
        }
    }
}

/// The commit log: an in-memory mirror of the records past the last
/// snapshot, plus a segmented storage backend holding their encoding
/// fanned out across lane-group chains.
///
/// Split into a staging **front** (this struct: stage scratch, record
/// mirror, acknowledgement bookkeeping) and a writer **back**
/// ([`WalBack`]: segment handles, rolls, manifest publication). When the
/// backend [prefers a writer thread](WalBackend::prefers_writer_thread)
/// the back runs each flush barrier on a dedicated thread —
/// [`Self::submit_flush`] hands batch N to the writer and returns, and
/// batch N+1 stages into double-buffered scratch while N's fsync is in
/// flight; [`Self::complete_flush`] resolves the barrier token,
/// acknowledges the batch into the mirror, and surfaces the barrier's
/// outcome. [`Self::flush`] remains the synchronous submit+complete
/// composition.
pub struct CommitWal {
    /// The writer back. `None` exactly while a pipelined flush is in
    /// flight (the back is on the writer thread).
    back: Option<WalBack>,
    opts: WalOptions,
    /// Records currently in the log (ascending, dense `sn`).
    records: Vec<WalRecord>,
    /// Accounting of the open-time load.
    load_stats: WalLoadStats,
    /// Per-group staged record encodings awaiting the next flush barrier
    /// (index = lane group; cleared-but-capacity-retained between
    /// batches, so steady-state staging allocates nothing).
    stage_bytes: Vec<Vec<u8>>,
    /// The staged records behind `stage_bytes`, per group (same
    /// lifecycle; needed to absorb segment metadata at flush).
    stage_recs: Vec<Vec<WalRecord>>,
    /// Staged records in `sn` order, not yet acknowledged: they join the
    /// mirror only when their batch's flush barrier *completes*.
    pending: Vec<WalRecord>,
    /// Record-encoding scratch (one encode per record, reused across
    /// appends — no steady-state allocation on the hot path).
    enc_buf: Vec<u8>,
    /// The dedicated writer thread (pipelined mode only).
    writer: Option<WalWriter>,
    /// The submitted-but-uncompleted barrier, if any (depth ≤ 1: the
    /// stage scratch is double-buffered, not N-buffered).
    inflight: Option<InFlightFlush>,
    /// The second stage-scratch buffer set, recycled from completed
    /// flush jobs.
    spare: Option<FlushJob>,
    /// Backend I/O counters and write-failure count as of the last
    /// submit — what [`Self::io_stats`] / [`Self::write_failures`]
    /// report while the back is on the writer (counters reflect
    /// *completed* barriers; the in-flight one lands at complete).
    stats_at_submit: (WalIoStats, u64),
}

impl CommitWal {
    /// A WAL over `backend`, replaying whatever the backend already
    /// holds.
    pub fn open(backend: Box<dyn WalBackend>, opts: WalOptions) -> Self {
        Self::open_with_floor(backend, opts, 0)
    }

    /// [`Self::open`] with a snapshot-covered floor: segments whose
    /// `last_sn < floor` are skipped without reading (every record in
    /// them is covered by the snapshot the caller recovered), and loaded
    /// records below the floor are dropped from the mirror. The skipped
    /// segments stay in the manifest so a later [`Self::compact`] can
    /// delete them.
    pub fn open_with_floor(mut backend: Box<dyn WalBackend>, opts: WalOptions, floor: u64) -> Self {
        let mut opts = opts.normalized();
        let mut stats = WalLoadStats::default();
        // An *absent* manifest means a fresh log; a *present but
        // undecodable* one (bit rot, read error) must NOT be treated the
        // same — an empty "authoritative" set would let the orphan sweep
        // below delete every intact segment on disk. Fall back to
        // rebuilding the live set by scanning storage instead: every
        // record survives, at the cost of reading everything once.
        let manifest = match backend.load_manifest() {
            None => Manifest::default(),
            Some(bytes) => match Manifest::decode(&bytes) {
                Some(m) => m,
                None => {
                    stats.manifest_recovered = true;
                    // All scanned segments are marked sealed: their true
                    // fill is unknown, and appending to more than one
                    // unsealed segment per group would break sn order.
                    let segments = backend
                        .list_segments()
                        .into_iter()
                        .map(|(group, seq)| {
                            let mut meta = SegmentMeta::fresh(group, seq);
                            meta.sealed = true;
                            // Force a scan: claim one record so the
                            // floor-skip (which trusts meta) never fires.
                            meta.records = 1;
                            meta.last_sn = u64::MAX;
                            meta
                        })
                        .collect::<Vec<_>>();
                    let next_seq = segments.iter().map(|s| s.seq + 1).max().unwrap_or(0);
                    Manifest {
                        next_seq,
                        lane_groups: 0,
                        segments,
                    }
                }
            },
        };
        // The lane-group layout is a property of the on-disk chains, not
        // of this process's config: adopt the manifest's grouping so
        // appends and compaction rewrites route records to the chains
        // they actually live in. A changed `wal_lane_groups` knob takes
        // effect on fresh logs only.
        if manifest.lane_groups != 0 {
            opts.lane_groups = manifest.lane_groups.clamp(1, MERKLE_LANES);
        }

        // Orphan cleanup: files on disk the manifest does not reference
        // are leftovers of a mid-compaction or mid-roll crash. The
        // manifest is authoritative; drop them so stale bytes can never
        // resurface. (Skipped in manifest-recovery mode, where every
        // file on disk IS the live set.)
        if !stats.manifest_recovered {
            let referenced: std::collections::BTreeSet<(u32, u64)> =
                manifest.segments.iter().map(|s| (s.group, s.seq)).collect();
            for (group, seq) in backend.list_segments() {
                if !referenced.contains(&(group, seq)) {
                    let _ = backend.delete_segment(group, seq);
                }
            }
        }

        // Load the live set, floor-skipping covered segments, and
        // re-derive each scanned segment's metadata from its actual
        // content (active segments grew past their manifest entry;
        // corrupt tails shrink it).
        let mut segments = Vec::with_capacity(manifest.segments.len());
        let mut by_sn: BTreeMap<u64, WalRecord> = BTreeMap::new();
        for meta in &manifest.segments {
            if meta.records > 0 && meta.last_sn < floor && meta.sealed {
                stats.segments_skipped += 1;
                segments.push(*meta);
                continue;
            }
            stats.segments_scanned += 1;
            let bytes = backend
                .read_segment(meta.group, meta.seq)
                .unwrap_or_default();
            let dec = decode_segment(&bytes);
            if dec.clean_end {
                stats.segments_clean_end += 1;
            }
            // The manifest's last-published count is a lower bound of
            // what was durably appended — for active segments too (their
            // count is published at creation and at compaction rewrite).
            // Decoding fewer means records are missing from this chain;
            // the batch trailer says which kind: a stream that ends
            // cleanly at a trailer lost only a suffix that was never
            // part of an acknowledged batch (a failed write that already
            // alarmed), while a mid-batch tear is a genuine torn loss.
            // Not meaningful in manifest-recovery mode, where the counts
            // above are fabricated.
            let decoded = dec.records;
            if !stats.manifest_recovered && (decoded.len() as u32) < meta.records {
                let shortfall = (meta.records - decoded.len() as u32) as u64;
                if dec.clean_end {
                    stats.records_unacked_lost += shortfall;
                } else {
                    stats.records_torn += shortfall;
                }
            }
            let mut fresh = SegmentMeta::fresh(meta.group, meta.seq);
            fresh.sealed = meta.sealed;
            for rec in decoded {
                fresh.absorb(&rec);
                if rec.sn < floor {
                    stats.records_below_floor += 1;
                } else {
                    by_sn.entry(rec.sn).or_insert(rec);
                }
            }
            segments.push(fresh);
        }

        // The mirror is the longest dense run from the lowest loaded sn:
        // a gap means a corrupt chain, and nothing past it can be
        // trusted to replay at the right position.
        let mut records: Vec<WalRecord> = Vec::with_capacity(by_sn.len());
        for (_, rec) in by_sn {
            if records.last().is_some_and(|last| last.sn + 1 != rec.sn) {
                break;
            }
            records.push(rec);
        }
        stats.records_loaded = records.len() as u64;

        let groups = opts.lane_groups as usize;
        let pipelined = backend.prefers_writer_thread();
        let mut wal = Self {
            back: Some(WalBack {
                backend,
                opts,
                segments,
                next_seq: manifest.next_seq,
                write_failures: 0,
            }),
            opts,
            records,
            load_stats: stats,
            stage_bytes: vec![Vec::new(); groups],
            stage_recs: vec![Vec::new(); groups],
            pending: Vec::new(),
            enc_buf: Vec::new(),
            writer: None,
            inflight: None,
            spare: None,
            stats_at_submit: (WalIoStats::default(), 0),
        };
        // After a scan-recovery the old chains' lane grouping is
        // unknowable, so rewrite storage from the mirror under the
        // current options and leave a decodable manifest behind — the
        // next open is a normal one.
        if stats.manifest_recovered {
            let back = wal.back.as_mut().expect("back present at open");
            back.rebuild_from(&wal.records);
        }
        if pipelined {
            wal.spawn_writer();
        }
        wal
    }

    /// An empty in-memory WAL with default segment options.
    pub fn in_memory() -> Self {
        Self::in_memory_with(WalOptions::default())
    }

    /// An empty in-memory WAL with explicit segment options.
    pub fn in_memory_with(opts: WalOptions) -> Self {
        Self::open(Box::new(MemBackend::default()), opts)
    }

    /// An in-memory WAL seeded from a flat record encoding (the sync /
    /// restart-from-bytes path: [`Self::to_bytes`] on the sender side).
    pub fn from_flat_bytes(bytes: &[u8], opts: WalOptions) -> Self {
        let mut wal = Self::in_memory_with(opts);
        for rec in decode_records(bytes) {
            wal.append(rec);
        }
        wal
    }

    /// The segment options in effect.
    pub fn options(&self) -> WalOptions {
        self.opts
    }

    /// Accounting of the open-time load (segment skips, torn tails).
    pub fn load_stats(&self) -> WalLoadStats {
        self.load_stats
    }

    /// The live segment set (manifest mirror). Only callable at rest —
    /// while a pipelined flush is in flight the segment set is on the
    /// writer thread; resolve the barrier ([`Self::complete_flush`] or
    /// [`Self::flush`]) first.
    pub fn segments(&self) -> &[SegmentMeta] {
        &self
            .back
            .as_ref()
            .expect("segments(): flush barrier in flight; complete it first")
            .segments
    }

    /// Whether flush barriers run on a dedicated writer thread (File
    /// mode) rather than inline (simulation).
    pub fn pipelined(&self) -> bool {
        self.writer.is_some()
    }

    /// Appends one confirmed-block record durably: stage + flush as a
    /// batch of one (one fsync per touched group). Callers with more than
    /// one record in hand should use [`Self::append_buffered`] +
    /// [`Self::flush`] so the fsync barrier amortizes over the batch.
    pub fn append(&mut self, rec: WalRecord) {
        self.append_buffered(rec);
        self.flush();
    }

    /// Stages one confirmed-block record for the next [`Self::flush`]:
    /// encodes it once (into a reused scratch buffer) and copies the
    /// encoding into the staging buffer of every lane-group chain its
    /// mask touches. **No backend I/O happens here** — the record is
    /// unacknowledged (absent from [`Self::records`]) until its batch's
    /// flush returns, and a crash before that loses it by design.
    pub fn append_buffered(&mut self, rec: WalRecord) {
        debug_assert!(
            self.last_known_sn().is_none_or(|sn| sn + 1 == rec.sn),
            "WAL sns must be dense: {:?} then {}",
            self.last_known_sn(),
            rec.sn
        );
        self.enc_buf.clear();
        rec.encode_into(&mut self.enc_buf);
        debug_assert_eq!(self.enc_buf.len(), ENCODED_RECORD_LEN);
        let mut groups = groups_of_mask(rec.lane_mask, self.opts.lane_groups);
        while groups != 0 {
            let group = groups.trailing_zeros() as usize;
            groups &= groups - 1;
            self.stage_bytes[group].extend_from_slice(&self.enc_buf);
            self.stage_recs[group].push(rec);
        }
        self.pending.push(rec);
    }

    /// The group-commit barrier, synchronous form: resolves any
    /// in-flight barrier, then submits and completes everything staged —
    /// [`Self::submit_flush`] + [`Self::complete_flush`] back to back.
    /// Returns `true` when every durable step (of both barriers)
    /// succeeded; on failure the records still enter the (authoritative)
    /// mirror and [`Self::write_failures`] is raised — same alarm
    /// discipline as every other durable write.
    ///
    /// Records staged but not yet flushed are **unacknowledged**: a crash
    /// in the stage→flush window loses exactly them and nothing else
    /// (previously flushed records sit behind their own barriers).
    pub fn flush(&mut self) -> bool {
        let mut ok = self.complete_flush().unwrap_or(true);
        if self.submit_flush() {
            ok &= self.complete_flush().expect("barrier just submitted");
        }
        ok
    }

    /// Submits everything staged as one flush barrier and returns
    /// without waiting for durability. In pipelined mode the write+fsync
    /// runs on the writer thread while the caller keeps working (new
    /// records stage into the double-buffered scratch); inline mode runs
    /// the barrier here but still parks the outcome, so the
    /// submit→complete structure is identical in both modes. The batch's
    /// records stay unacknowledged until [`Self::complete_flush`].
    ///
    /// Returns `false` (no barrier submitted) when nothing is staged. At
    /// most one barrier may be in flight: complete the previous one
    /// first.
    pub fn submit_flush(&mut self) -> bool {
        if self.pending.is_empty() {
            return false;
        }
        assert!(
            self.inflight.is_none(),
            "submit_flush: a flush barrier is already in flight; complete it first"
        );
        let groups = self.opts.lane_groups as usize;
        let spare = self.spare.take().unwrap_or_else(|| FlushJob::empty(groups));
        let mut job = FlushJob {
            bytes: std::mem::replace(&mut self.stage_bytes, spare.bytes),
            recs: std::mem::replace(&mut self.stage_recs, spare.recs),
        };
        let records = std::mem::take(&mut self.pending);
        let mut back = self
            .back
            .take()
            .expect("back present when no barrier is in flight");
        self.stats_at_submit = (back.backend.io_stats(), back.write_failures);
        match &self.writer {
            None => {
                let ok = back.flush_batch(&mut job);
                self.back = Some(back);
                self.spare = Some(job);
                self.inflight = Some(InFlightFlush::Done { ok, records });
            }
            Some(w) => {
                w.submit
                    .send((back, job))
                    .expect("WAL writer thread is alive");
                self.inflight = Some(InFlightFlush::Sent { records });
            }
        }
        true
    }

    /// Resolves the in-flight barrier token: blocks until the writer
    /// reports (pipelined mode), acknowledges the batch's records into
    /// the mirror, and returns the barrier's outcome — `false` means a
    /// durable step failed and the caller must treat the batch as
    /// alarmed, not durable. Returns `None` when no barrier is in
    /// flight.
    pub fn complete_flush(&mut self) -> Option<bool> {
        match self.inflight.take()? {
            InFlightFlush::Done { ok, mut records } => {
                self.records.append(&mut records);
                Some(ok)
            }
            InFlightFlush::Sent { mut records } => {
                let w = self.writer.as_ref().expect("Sent implies a writer");
                let (back, job, ok) = w.done.recv().expect("WAL writer thread died");
                self.back = Some(back);
                self.spare = Some(job);
                self.records.append(&mut records);
                Some(ok)
            }
        }
    }

    /// True while a submitted barrier awaits [`Self::complete_flush`].
    pub fn has_inflight_flush(&self) -> bool {
        self.inflight.is_some()
    }

    /// Records inside the in-flight barrier, if any: submitted to the
    /// writer but not yet acknowledged.
    pub fn inflight_len(&self) -> usize {
        self.inflight.as_ref().map_or(0, |f| f.records().len())
    }

    /// Highest sn known to the front across all acknowledgement states:
    /// staged, in flight, or mirrored.
    fn last_known_sn(&self) -> Option<u64> {
        self.pending
            .last()
            .or_else(|| self.inflight.as_ref().and_then(|f| f.records().last()))
            .or(self.records.last())
            .map(|r| r.sn)
    }

    fn spawn_writer(&mut self) {
        let (submit, submit_rx) = std::sync::mpsc::channel::<(WalBack, FlushJob)>();
        let (done_tx, done) = std::sync::mpsc::channel();
        let handle = std::thread::Builder::new()
            .name("ladon-wal-writer".into())
            .spawn(move || {
                while let Ok((mut back, mut job)) = submit_rx.recv() {
                    let ok = back.flush_batch(&mut job);
                    if done_tx.send((back, job, ok)).is_err() {
                        break;
                    }
                }
            })
            .expect("spawn WAL writer thread");
        self.writer = Some(WalWriter {
            submit,
            done,
            handle: Some(handle),
        });
    }

    /// Records staged by [`Self::append_buffered`] but not yet flushed —
    /// unacknowledged, and lost by a crash right now.
    pub fn staged_len(&self) -> usize {
        self.pending.len()
    }

    /// The backend's deterministic I/O counters (writes, fsyncs, segment
    /// opens, bytes written). While a pipelined barrier is in flight
    /// this reports the counters as of its submission — completed
    /// barriers only, never a half-run one.
    pub fn io_stats(&self) -> WalIoStats {
        match &self.back {
            Some(back) => back.backend.io_stats(),
            None => self.stats_at_submit.0,
        }
    }

    /// Backend writes that reported failure since open (durability
    /// alarm). Same as-of-submission discipline as [`Self::io_stats`]
    /// while a barrier is in flight.
    pub fn write_failures(&self) -> u64 {
        match &self.back {
            Some(back) => back.write_failures,
            None => self.stats_at_submit.1,
        }
    }

    /// Records currently in the log.
    pub fn records(&self) -> &[WalRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Drops records with `sn < upto` (they are covered by a snapshot).
    ///
    /// Storage-side this is the atomic segment rotation, never an
    /// in-place truncation:
    ///
    /// 1. fully covered segments are marked for deletion; straddling
    ///    segments get their surviving tail written to *new* segment
    ///    files (fsynced);
    /// 2. a manifest naming the new live set is published atomically
    ///    (temp + fsync + rename + dir-fsync) — the commit point;
    /// 3. only then are the old files deleted.
    ///
    /// A crash (or a failed write) anywhere in the protocol leaves a
    /// readable log: before the commit point the old manifest still
    /// names the complete old set; after it the new manifest names the
    /// complete new set, and stale files are orphans the next open
    /// sweeps away. No step ever modifies a file the current manifest
    /// references.
    pub fn compact(&mut self, upto: u64) {
        // Rotation rewrites straddlers from the mirror: staged records
        // must be acknowledged (or alarmed) first so none can vanish
        // between a stage and a rotation — and the drain guarantees the
        // back is home from the writer.
        self.flush();
        let keep_from = self.records.partition_point(|r| r.sn < upto);
        let back = self.back.as_mut().expect("back home after flush");
        let affected = back
            .segments
            .iter()
            .any(|s| s.records > 0 && s.first_sn < upto);
        if keep_from == 0 && !affected {
            return;
        }
        // Mirror first: it is authoritative regardless of storage luck.
        self.records.drain(..keep_from);
        let back = self.back.as_mut().expect("back home after flush");
        back.rotate_segments(&self.records, |meta| {
            if meta.records == 0 || meta.first_sn >= upto {
                SegmentFate::Keep
            } else if meta.last_sn < upto {
                SegmentFate::Delete
            } else {
                // Straddler: the surviving tail, capped at the
                // straddler's own range — the group's later segments
                // keep theirs.
                SegmentFate::Rewrite {
                    first: upto,
                    last: meta.last_sn,
                }
            }
        });
    }

    /// Re-pushes the authoritative mirror into the backend: every live
    /// segment with records is rewritten from mirrored records and a
    /// fresh manifest is published, under the same atomic rotation
    /// discipline as [`Self::compact`]. This is the repair step behind
    /// degraded-mode retries — after a run of failed barriers the
    /// backend is missing (or has torn) records the mirror still holds,
    /// and a successful rewrite makes every mirrored record durable
    /// again in one shot.
    ///
    /// Returns `true` when the whole repair (rewrite + manifest
    /// publish + old-file deletes, plus the initial staged-record
    /// drain) ran without a single backend failure; on `false` the old
    /// manifest still governs a readable log and the caller should
    /// retry later.
    pub fn repair_backend(&mut self) -> bool {
        // Drain staged/in-flight records into the mirror first (they may
        // alarm if the backend is still broken — the rotation below
        // rewrites them from the mirror regardless).
        self.flush();
        let before = self
            .back
            .as_ref()
            .expect("back home after flush")
            .write_failures;
        let back = self.back.as_mut().expect("back home after flush");
        back.rotate_segments(&self.records, |meta| {
            if meta.records == 0 {
                SegmentFate::Keep
            } else {
                SegmentFate::Rewrite {
                    first: meta.first_sn,
                    last: meta.last_sn,
                }
            }
        });
        let back = self.back.as_ref().expect("back home after rotation");
        back.write_failures == before
    }

    /// Drops records with `sn >= from_sn` from the log — the unreplayable
    /// dangling suffix left when corruption opened a gap below it.
    /// Records the mirror no longer holds (covered, torn, or past the
    /// gap) are dropped with their segments.
    pub fn truncate_from(&mut self, from_sn: u64) {
        self.flush();
        let cut = self.records.partition_point(|r| r.sn < from_sn);
        let back = self.back.as_mut().expect("back home after flush");
        let affected = back
            .segments
            .iter()
            .any(|s| s.records > 0 && s.last_sn >= from_sn);
        if cut == self.records.len() && !affected {
            return;
        }
        self.records.truncate(cut);
        let back = self.back.as_mut().expect("back home after flush");
        back.rotate_segments(&self.records, |meta| {
            if meta.records == 0 || meta.last_sn < from_sn {
                SegmentFate::Keep
            } else if meta.first_sn >= from_sn {
                SegmentFate::Delete
            } else {
                SegmentFate::Rewrite {
                    first: meta.first_sn,
                    last: from_sn - 1,
                }
            }
        });
    }

    /// The whole log as bytes (for shipping a WAL tail over sync).
    /// Acknowledged records only: staged and in-flight records are not
    /// yet durable and never ship.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut bytes = Vec::new();
        for r in &self.records {
            r.encode_into(&mut bytes);
        }
        bytes
    }
}

impl Drop for CommitWal {
    fn drop(&mut self) {
        // Resolve any in-flight barrier so the writer is not mid-batch
        // when its channels close, then drop the submit side and join —
        // the writer loop exits on the hangup. Records staged but never
        // submitted are lost by design (same as a crash in the
        // stage→flush window).
        let _ = self.complete_flush();
        if let Some(WalWriter {
            submit,
            done,
            handle,
        }) = self.writer.take()
        {
            drop(submit);
            drop(done);
            if let Some(handle) = handle {
                let _ = handle.join();
            }
        }
    }
}

impl WalBack {
    /// The group-commit barrier body: writes every staged group's bytes
    /// with **one** backend write + **one** fsync per touched group
    /// (plus the amortized segment-roll bookkeeping). Runs on the writer
    /// thread in pipelined mode, inline otherwise; the front
    /// acknowledges the batch's records only once the outcome computed
    /// here resolves. The job's buffers come back emptied with capacity
    /// retained (the double-buffering recycle).
    fn flush_batch(&mut self, job: &mut FlushJob) -> bool {
        let mut failed = false;
        let mut sealed_any = false;
        for group in 0..self.opts.lane_groups {
            let g = group as usize;
            if job.recs[g].is_empty() {
                continue;
            }
            // Take the scratch out (returned, emptied, below) so the
            // borrow does not fight the segment-roll bookkeeping.
            let recs = std::mem::take(&mut job.recs[g]);
            let bytes = std::mem::take(&mut job.bytes[g]);
            debug_assert_eq!(bytes.len(), recs.len() * ENCODED_RECORD_LEN);
            let mut at = 0usize;
            while at < recs.len() {
                let idx = match self.active_segment(group) {
                    Some(idx) => idx,
                    None => {
                        // Mid-batch roll: the just-sealed segment's
                        // staged bytes must be durable BEFORE a manifest
                        // naming its record count is published — the load
                        // path treats manifest counts as a lower bound of
                        // what was durably appended, and publishing first
                        // would turn an unacknowledged in-flight batch
                        // into a false `records_torn` alarm after a
                        // crash. (A no-op when the group has nothing
                        // staged, i.e. the roll opens the batch.)
                        if !self.backend.sync_group(group) {
                            failed = true;
                        }
                        // Roll a fresh active segment for the group:
                        // create the (empty) file, then publish the
                        // manifest that references it — BEFORE any record
                        // bytes land in it. Appending first would open a
                        // crash window in which a durably-written record
                        // sits in a file the manifest never named, and
                        // the next open's orphan sweep would delete it. A
                        // crash between create and publish leaves only an
                        // ignorable empty orphan.
                        let seq = self.next_seq;
                        self.next_seq += 1;
                        if !self.backend.write_segment(group, seq, &[]) {
                            failed = true;
                        }
                        self.segments.push(SegmentMeta::fresh(group, seq));
                        self.segments.sort_unstable_by_key(|s| (s.group, s.seq));
                        if !self.publish_manifest() {
                            failed = true;
                        }
                        self.segment_index(group, seq).expect("just inserted")
                    }
                };
                // A reopened log may hold an overfull unsealed segment
                // (smaller `segment_records` knob than the one it was
                // written under): seal it and roll rather than underflow.
                let room = self
                    .opts
                    .segment_records
                    .saturating_sub(self.segments[idx].records) as usize;
                if room == 0 {
                    self.segments[idx].sealed = true;
                    sealed_any = true;
                    continue;
                }
                // Fixed-size encodings make the batch splittable at any
                // record boundary without re-encoding: one contiguous
                // byte range per (segment, run) straight from the
                // staging buffer (no concatenation copy), closed by the
                // run's batch trailer so the on-disk stream ends at an
                // acknowledgement boundary after every flush.
                let take = room.min(recs.len() - at);
                let range = at * ENCODED_RECORD_LEN..(at + take) * ENCODED_RECORD_LEN;
                let (grp, seq) = (self.segments[idx].group, self.segments[idx].seq);
                let trailer = trailer_bytes(self.segments[idx].records + take as u32);
                if !self
                    .backend
                    .append_segment_batch(grp, seq, &bytes[range], &trailer)
                {
                    failed = true;
                }
                let meta = &mut self.segments[idx];
                for rec in &recs[at..at + take] {
                    meta.absorb(rec);
                }
                if meta.records >= self.opts.segment_records {
                    meta.sealed = true;
                    sealed_any = true;
                }
                at += take;
            }
            // The durability barrier for everything staged in the group.
            if !self.backend.sync_group(group) {
                failed = true;
            }
            let (mut recs, mut bytes) = (recs, bytes);
            recs.clear();
            bytes.clear();
            job.recs[g] = recs;
            job.bytes[g] = bytes;
        }
        // Seal events only refresh metadata of already-referenced files;
        // deferring their publish to the end opens no sweep window.
        if sealed_any && !self.publish_manifest() {
            failed = true;
        }
        if failed {
            self.write_failures += 1;
        }
        !failed
    }

    /// Rewrites the whole backend from the mirror under the current
    /// options — the manifest-recovery path, where the on-disk chains'
    /// original lane grouping is unknowable (routing rewrites through
    /// the wrong grouping could drop records from every chain they live
    /// in). Same commit discipline as [`Self::rotate_segments`]: new
    /// files first (one durable write per segment), manifest publish as
    /// the commit point, old files deleted last — and an abort before
    /// the commit point on any failed write. A crash or abort before
    /// the publish leaves the (still undecodable) old manifest, so the
    /// next open re-enters scan recovery with all data intact (the
    /// partial new files simply join the scan and deduplicate).
    fn rebuild_from(&mut self, records: &[WalRecord]) {
        let old: Vec<(u32, u64)> = self.segments.iter().map(|s| (s.group, s.seq)).collect();
        let mut ok = true;
        let mut new_segments: Vec<SegmentMeta> = Vec::new();
        for group in 0..self.opts.lane_groups {
            let group_bit = 1u64 << group;
            let mut bytes = Vec::new();
            let mut meta = SegmentMeta::fresh(group, 0);
            for rec in records {
                if groups_of_mask(rec.lane_mask, self.opts.lane_groups) & group_bit == 0 {
                    continue;
                }
                rec.encode_into(&mut bytes);
                meta.absorb(rec);
                if meta.records >= self.opts.segment_records {
                    meta.sealed = true;
                    meta.seq = self.next_seq;
                    self.next_seq += 1;
                    encode_trailer(meta.records, &mut bytes);
                    ok &= self.backend.write_segment(group, meta.seq, &bytes);
                    new_segments.push(meta);
                    bytes = Vec::new();
                    meta = SegmentMeta::fresh(group, 0);
                }
            }
            if meta.records > 0 {
                meta.seq = self.next_seq;
                self.next_seq += 1;
                encode_trailer(meta.records, &mut bytes);
                ok &= self.backend.write_segment(group, meta.seq, &bytes);
                new_segments.push(meta);
            }
        }
        if !ok {
            self.write_failures += 1;
            return;
        }
        new_segments.sort_unstable_by_key(|s| (s.group, s.seq));
        self.segments = new_segments;
        if !self.publish_manifest() {
            self.write_failures += 1;
            return;
        }
        for (group, seq) in old {
            if !self.backend.delete_segment(group, seq) {
                self.write_failures += 1;
            }
        }
    }

    /// The atomic segment rotation behind [`CommitWal::compact`] and
    /// [`CommitWal::truncate_from`], never an in-place truncation:
    ///
    /// 1. each live segment is kept, marked for deletion, or — when it
    ///    straddles the cut — has its surviving `first..=last` records
    ///    rewritten (from `records`, the front's mirror, restricted to
    ///    the records routed to its group) to a *new* fsynced segment
    ///    file;
    /// 2. a manifest naming the new live set is published atomically
    ///    (temp + fsync + rename + dir-fsync) — the commit point;
    /// 3. only then are the replaced files deleted.
    ///
    /// A crash (or a failed write) anywhere in the protocol leaves a
    /// readable log: before the commit point the old manifest still
    /// names the complete old set, which no step ever modifies; after it
    /// the new manifest names the complete new set, and stale files are
    /// orphans the next open sweeps away.
    fn rotate_segments(
        &mut self,
        records: &[WalRecord],
        fate: impl Fn(&SegmentMeta) -> SegmentFate,
    ) {
        let mut ok = true;
        let mut new_segments: Vec<SegmentMeta> = Vec::with_capacity(self.segments.len());
        let mut delete: Vec<(u32, u64)> = Vec::new();
        for meta in self.segments.clone() {
            match fate(&meta) {
                SegmentFate::Keep => new_segments.push(meta),
                SegmentFate::Delete => delete.push((meta.group, meta.seq)),
                SegmentFate::Rewrite { first, last } => {
                    let group_bit = 1u64 << meta.group;
                    let mut bytes = Vec::new();
                    let mut fresh = SegmentMeta::fresh(meta.group, self.next_seq);
                    fresh.sealed = meta.sealed;
                    for rec in records {
                        if (first..=last).contains(&rec.sn)
                            && groups_of_mask(rec.lane_mask, self.opts.lane_groups) & group_bit != 0
                        {
                            rec.encode_into(&mut bytes);
                            fresh.absorb(rec);
                        }
                    }
                    self.next_seq += 1;
                    delete.push((meta.group, meta.seq));
                    if fresh.records == 0 {
                        // Nothing survives (e.g. the mirror lost the
                        // range to corruption): just drop the segment.
                        continue;
                    }
                    // A rewrite is one acknowledged batch: close it with
                    // a trailer so the fresh stream ends cleanly.
                    encode_trailer(fresh.records, &mut bytes);
                    if !self.backend.write_segment(fresh.group, fresh.seq, &bytes) {
                        ok = false;
                    }
                    new_segments.push(fresh);
                }
            }
        }
        if !ok {
            // New files did not all reach storage: abort the rotation.
            // The old manifest still names the complete old set, which
            // remains untouched on disk; the orphaned new files are
            // swept on the next open.
            self.write_failures += 1;
            return;
        }

        // The commit point.
        new_segments.sort_unstable_by_key(|s| (s.group, s.seq));
        self.segments = new_segments;
        if !self.publish_manifest() {
            // Old manifest still governs; old files still intact. Keep
            // the mirror authoritative and raise the alarm.
            self.write_failures += 1;
            return;
        }

        // Old files are now unreferenced; delete them.
        for (group, seq) in delete {
            if !self.backend.delete_segment(group, seq) {
                // Harmless (orphan swept on next open), but surface it.
                self.write_failures += 1;
            }
        }
    }

    fn active_segment(&self, group: u32) -> Option<usize> {
        self.segments
            .iter()
            .position(|s| s.group == group && !s.sealed)
    }

    fn segment_index(&self, group: u32, seq: u64) -> Option<usize> {
        self.segments
            .iter()
            .position(|s| s.group == group && s.seq == seq)
    }

    fn publish_manifest(&mut self) -> bool {
        let manifest = Manifest {
            next_seq: self.next_seq,
            lane_groups: self.opts.lane_groups,
            segments: self.segments.clone(),
        };
        self.backend.publish_manifest(&manifest.encode())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    /// A [`MemBackend`] whose storage survives the WAL that owns it, so
    /// tests can reopen "the same disk".
    #[derive(Clone, Default)]
    struct SharedMem(Arc<Mutex<MemBackend>>);

    impl WalBackend for SharedMem {
        fn append_segment_batch(
            &mut self,
            group: u32,
            seq: u64,
            records: &[u8],
            trailer: &[u8],
        ) -> bool {
            self.0
                .lock()
                .unwrap()
                .append_segment_batch(group, seq, records, trailer)
        }
        fn sync_group(&mut self, group: u32) -> bool {
            self.0.lock().unwrap().sync_group(group)
        }
        fn write_segment(&mut self, group: u32, seq: u64, bytes: &[u8]) -> bool {
            self.0.lock().unwrap().write_segment(group, seq, bytes)
        }
        fn read_segment(&mut self, group: u32, seq: u64) -> Option<Vec<u8>> {
            self.0.lock().unwrap().read_segment(group, seq)
        }
        fn delete_segment(&mut self, group: u32, seq: u64) -> bool {
            self.0.lock().unwrap().delete_segment(group, seq)
        }
        fn publish_manifest(&mut self, bytes: &[u8]) -> bool {
            self.0.lock().unwrap().publish_manifest(bytes)
        }
        fn load_manifest(&mut self) -> Option<Vec<u8>> {
            self.0.lock().unwrap().load_manifest()
        }
        fn list_segments(&mut self) -> Vec<(u32, u64)> {
            self.0.lock().unwrap().list_segments()
        }
        fn io_stats(&self) -> WalIoStats {
            self.0.lock().unwrap().io_stats()
        }
    }

    fn rec(sn: u64) -> WalRecord {
        rec_masked(sn, 1 << (sn % MERKLE_LANES as u64))
    }

    fn rec_masked(sn: u64, lane_mask: u64) -> WalRecord {
        WalRecord {
            sn,
            instance: (sn % 4) as u32,
            round: sn / 4 + 1,
            rank: sn,
            first_tx: sn * 100,
            count: 7,
            bucket: 1,
            payload_bytes: 3500,
            lane_mask,
            payload_digest: Digest([sn as u8; 32]),
        }
    }

    fn opts(groups: u32, seg: u32) -> WalOptions {
        WalOptions {
            lane_groups: groups,
            segment_records: seg,
        }
    }

    #[test]
    fn roundtrip_and_dense_append() {
        let mut wal = CommitWal::in_memory();
        for sn in 0..10 {
            wal.append(rec(sn));
        }
        let decoded = decode_records(&wal.to_bytes());
        assert_eq!(decoded.len(), 10);
        assert_eq!(decoded[3], rec(3));
    }

    #[test]
    fn torn_tail_is_discarded() {
        let mut wal = CommitWal::in_memory();
        for sn in 0..5 {
            wal.append(rec(sn));
        }
        let mut bytes = wal.to_bytes();
        bytes.truncate(bytes.len() - 3); // partial final record
        let decoded = decode_records(&bytes);
        assert_eq!(decoded.len(), 4);
    }

    #[test]
    fn corrupt_record_stops_the_replay() {
        let mut wal = CommitWal::in_memory();
        for sn in 0..5 {
            wal.append(rec(sn));
        }
        let mut bytes = wal.to_bytes();
        let record_size = bytes.len() / 5;
        bytes[2 * record_size + 10] ^= 0xff; // flip a bit inside record 2
        let decoded = decode_records(&bytes);
        assert_eq!(decoded.len(), 2, "replay must stop at the bad checksum");
    }

    #[test]
    fn repair_backend_rewrites_mirror_after_failed_barriers() {
        use crate::faults::{FaultBackend, FaultPlan};
        let disk = SharedMem::default();
        let plan = FaultPlan::unlimited();
        let mut wal = CommitWal::open(
            Box::new(FaultBackend::new(disk.clone(), plan.clone())),
            opts(2, 4),
        );
        for sn in 0..6 {
            wal.append(rec(sn));
        }
        assert_eq!(wal.write_failures(), 0);
        // Disk fills: further appends alarm but stay in the mirror.
        let _ = plan.clone().enospc_after(0);
        for sn in 6..10 {
            wal.append(rec(sn));
        }
        assert!(wal.write_failures() > 0, "full disk must alarm");
        assert_eq!(wal.len(), 10, "mirror is authoritative regardless");
        assert!(
            !wal.repair_backend(),
            "repair against a still-full disk must report failure"
        );
        plan.free_space();
        assert!(wal.repair_backend(), "repair succeeds once space is freed");
        drop(wal);
        // The repaired on-disk log holds every mirrored record.
        let reopened = CommitWal::open(Box::new(disk), opts(2, 4));
        assert_eq!(reopened.len(), 10);
        assert_eq!(reopened.records().last().unwrap().sn, 9);
    }

    #[test]
    fn lane_groups_partition_contiguously() {
        for groups in [1u32, 2, 4, 8, 16, 64] {
            let mut seen = vec![0u32; groups as usize];
            let mut last = 0u32;
            for lane in 0..MERKLE_LANES {
                let g = group_of_lane(lane, groups);
                assert!(g < groups);
                assert!(g >= last, "groups must be contiguous in lane order");
                last = g;
                seen[g as usize] += 1;
            }
            assert!(seen.iter().all(|&c| c > 0), "no empty group at {groups}");
        }
        // Empty masks are homed to group 0 (dense log even for empty
        // blocks).
        assert_eq!(groups_of_mask(0, 8), 1);
        // A full mask touches every group.
        assert_eq!(groups_of_mask(u64::MAX, 8).count_ones(), 8);
    }

    #[test]
    fn records_fan_out_to_touched_groups_only() {
        let mut wal = CommitWal::in_memory_with(opts(8, 1024));
        // Lane 0 → group 0; lane 63 → group 7.
        wal.append(rec_masked(0, 1 << 0));
        wal.append(rec_masked(1, 1 << 63));
        wal.append(rec_masked(2, (1 << 0) | (1 << 63)));
        let groups: Vec<u32> = wal.segments().iter().map(|s| s.group).collect();
        assert_eq!(groups, vec![0, 7]);
        assert_eq!(wal.segments()[0].records, 2); // sns 0, 2
        assert_eq!(wal.segments()[1].records, 2); // sns 1, 2
        assert_eq!(wal.len(), 3, "mirror holds each record once");
    }

    #[test]
    fn segments_roll_and_reopen_merges_groups() {
        let disk = SharedMem::default();
        {
            let mut wal = CommitWal::open(Box::new(disk.clone()), opts(4, 4));
            for sn in 0..20 {
                wal.append(rec(sn));
            }
            assert!(
                wal.segments().iter().any(|s| s.sealed),
                "4-record segments must have sealed by 20 appends"
            );
        }
        let wal = CommitWal::open(Box::new(disk), opts(4, 4));
        assert_eq!(wal.len(), 20, "reopen must merge all groups losslessly");
        for (i, r) in wal.records().iter().enumerate() {
            assert_eq!(*r, rec(i as u64));
        }
    }

    #[test]
    fn compaction_drops_snapshotted_prefix() {
        let mut wal = CommitWal::in_memory_with(opts(4, 8));
        for sn in 0..20 {
            wal.append(rec(sn));
        }
        wal.compact(15);
        assert_eq!(wal.len(), 5);
        assert_eq!(wal.records()[0].sn, 15);
        // Backend rewritten too: reopening sees only the tail.
        let reopened = decode_records(&wal.to_bytes());
        assert_eq!(reopened.len(), 5);
        // No live segment still reaches below the cut.
        assert!(wal
            .segments()
            .iter()
            .all(|s| s.records == 0 || s.first_sn >= 15));
    }

    #[test]
    fn open_with_floor_skips_covered_segments() {
        let disk = SharedMem::default();
        {
            let mut wal = CommitWal::open(Box::new(disk.clone()), opts(2, 4));
            for sn in 0..32 {
                wal.append(rec(sn));
            }
        }
        let wal = CommitWal::open_with_floor(Box::new(disk), opts(2, 4), 24);
        let stats = wal.load_stats();
        assert!(
            stats.segments_skipped > 0,
            "sealed segments below the floor must be skipped unread: {stats:?}"
        );
        assert_eq!(wal.records().first().map(|r| r.sn), Some(24));
        assert_eq!(wal.len(), 8);
        assert_eq!(
            stats.records_loaded, 8,
            "only the tail is mirrored: {stats:?}"
        );
    }

    #[test]
    fn file_backend_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("ladon-wal-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut wal =
                CommitWal::open(Box::new(FileBackend::open_dir(&dir).unwrap()), opts(4, 3));
            for sn in 0..8 {
                wal.append(rec(sn));
            }
        }
        let wal = CommitWal::open(Box::new(FileBackend::open_dir(&dir).unwrap()), opts(4, 3));
        assert_eq!(wal.len(), 8);
        assert_eq!(wal.records()[7], rec(7));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_compaction_is_atomic_rename_and_delete() {
        let dir = std::env::temp_dir().join(format!("ladon-wal-compact-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut wal = CommitWal::open(Box::new(FileBackend::open_dir(&dir).unwrap()), opts(2, 4));
        for sn in 0..20 {
            wal.append(rec(sn));
        }
        let before: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        wal.compact(18);
        assert_eq!(wal.write_failures(), 0);
        // Old segment files are gone; the manifest and the tail remain.
        let after: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert!(after.iter().any(|n| n == "wal.manifest"));
        assert!(!after.iter().any(|n| n.ends_with(".tmp")));
        assert!(
            after.iter().filter(|n| n.ends_with(".seg")).count()
                < before.iter().filter(|n| n.ends_with(".seg")).count(),
            "compaction must shrink the segment set: {before:?} -> {after:?}"
        );
        drop(wal);
        let wal = CommitWal::open(Box::new(FileBackend::open_dir(&dir).unwrap()), opts(2, 4));
        assert_eq!(wal.len(), 2);
        assert_eq!(wal.records()[0].sn, 18);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_manifest_recovers_by_scan_and_loses_nothing() {
        let dir = std::env::temp_dir().join(format!("ladon-wal-badman-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut wal =
                CommitWal::open(Box::new(FileBackend::open_dir(&dir).unwrap()), opts(4, 3));
            for sn in 0..14 {
                wal.append(rec(sn));
            }
        }
        // Bit-rot the manifest: one flipped byte must NOT read as "empty
        // authoritative set" (which would sweep every segment as an
        // orphan).
        let manifest_path = dir.join("wal.manifest");
        let mut bytes = std::fs::read(&manifest_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&manifest_path, &bytes).unwrap();

        let wal = CommitWal::open(Box::new(FileBackend::open_dir(&dir).unwrap()), opts(4, 3));
        assert!(wal.load_stats().manifest_recovered);
        assert_eq!(wal.len(), 14, "scan recovery must preserve every record");
        for (i, r) in wal.records().iter().enumerate() {
            assert_eq!(*r, rec(i as u64));
        }
        assert_eq!(
            wal.write_failures(),
            0,
            "the storage rebuild itself must succeed"
        );
        drop(wal);
        // The rebuild left a decodable manifest: the next open is normal
        // and still holds everything.
        let wal = CommitWal::open(Box::new(FileBackend::open_dir(&dir).unwrap()), opts(4, 3));
        assert!(!wal.load_stats().manifest_recovered);
        assert_eq!(wal.len(), 14);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn orphan_segments_are_swept_on_open() {
        let dir = std::env::temp_dir().join(format!("ladon-wal-orphan-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut wal =
                CommitWal::open(Box::new(FileBackend::open_dir(&dir).unwrap()), opts(2, 4));
            for sn in 0..6 {
                wal.append(rec(sn));
            }
        }
        // A mid-compaction crash leaves a new-tail file the manifest
        // never came to reference.
        std::fs::write(dir.join(FileBackend::segment_name(0, 99)), b"garbage").unwrap();
        let wal = CommitWal::open(Box::new(FileBackend::open_dir(&dir).unwrap()), opts(2, 4));
        assert_eq!(wal.len(), 6, "orphans must not perturb the log");
        assert!(
            !dir.join(FileBackend::segment_name(0, 99)).exists(),
            "the orphan must be swept"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopening_with_different_lane_groups_adopts_disk_layout() {
        // The manifest records the grouping the chains were laid out
        // with; a process configured differently must adopt it, or
        // compaction rewrites would route records to chains they do not
        // live in and silently drop them.
        let disk = SharedMem::default();
        {
            let mut wal = CommitWal::open(Box::new(disk.clone()), opts(8, 4));
            for sn in 0..20 {
                wal.append(rec(sn));
            }
        }
        let mut wal = CommitWal::open(Box::new(disk.clone()), opts(2, 4));
        assert_eq!(
            wal.options().lane_groups,
            8,
            "the on-disk layout must win over the configured knob"
        );
        assert_eq!(wal.len(), 20);
        // Appends and a mid-segment compaction still route correctly.
        for sn in 20..26 {
            wal.append(rec(sn));
        }
        wal.compact(18);
        assert_eq!(wal.write_failures(), 0);
        drop(wal);
        let wal = CommitWal::open(Box::new(disk), opts(2, 4));
        let sns: Vec<u64> = wal.records().iter().map(|r| r.sn).collect();
        assert_eq!(sns, (18..26).collect::<Vec<_>>());
    }

    #[test]
    fn truncate_from_preserves_sealed_and_drops_suffix() {
        let disk = SharedMem::default();
        {
            let mut wal = CommitWal::open(Box::new(disk.clone()), opts(2, 4));
            for sn in 0..10 {
                wal.append(rec(sn));
            }
            wal.truncate_from(6);
            assert_eq!(wal.len(), 6);
            assert_eq!(wal.write_failures(), 0);
            // A rewritten head of a sealed segment stays sealed: at most
            // one unsealed segment per group survives.
            for group in 0..2 {
                let unsealed = wal
                    .segments()
                    .iter()
                    .filter(|s| s.group == group && !s.sealed)
                    .count();
                assert!(unsealed <= 1, "group {group} has {unsealed} unsealed");
            }
        }
        let wal = CommitWal::open(Box::new(disk), opts(2, 4));
        let sns: Vec<u64> = wal.records().iter().map(|r| r.sn).collect();
        assert_eq!(sns, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn flat_bytes_roundtrip_for_sync() {
        let mut wal = CommitWal::in_memory_with(opts(8, 4));
        for sn in 0..10 {
            wal.append(rec(sn));
        }
        let shipped = wal.to_bytes();
        let rebuilt = CommitWal::from_flat_bytes(&shipped, opts(2, 100));
        assert_eq!(rebuilt.records(), wal.records());
    }

    #[test]
    fn staged_records_are_unacknowledged_until_flush() {
        let mut wal = CommitWal::in_memory_with(opts(4, 1024));
        wal.append_buffered(rec(0));
        wal.append_buffered(rec(1));
        assert_eq!(wal.len(), 0, "staged records must not be acknowledged");
        assert_eq!(wal.staged_len(), 2);
        assert!(wal.flush());
        assert_eq!(wal.len(), 2);
        assert_eq!(wal.staged_len(), 0);
        assert_eq!(wal.records()[1], rec(1));
        // An empty flush is free: no records, no fsyncs.
        let before = wal.io_stats();
        assert!(wal.flush());
        assert_eq!(wal.io_stats(), before);
    }

    #[test]
    fn flush_is_one_fsync_per_touched_group_per_batch() {
        let mut wal = CommitWal::in_memory_with(opts(4, 1024));
        // Warm batch: creates the active segments (rolls publish
        // manifests, which cost extra one-time fsyncs).
        for sn in 0..4 {
            wal.append_buffered(rec_masked(sn, u64::MAX));
        }
        assert!(wal.flush());
        let s0 = wal.io_stats();
        // Steady state: each batch of 16 full-mask records must cost
        // exactly one write and one fsync per group, not per record.
        for batch in 0..3u64 {
            for i in 0..16 {
                wal.append_buffered(rec_masked(4 + batch * 16 + i, u64::MAX));
            }
            assert!(wal.flush());
        }
        let s1 = wal.io_stats();
        assert_eq!(s1.fsyncs - s0.fsyncs, 3 * 4, "1 fsync per group per batch");
        assert_eq!(
            s1.appends - s0.appends,
            3 * 4,
            "1 write per group per batch"
        );
        assert_eq!(
            s1.bytes_written - s0.bytes_written,
            3 * 4 * (16 * ENCODED_RECORD_LEN as u64 + TRAILER_LEN as u64),
            "every record's encoding lands once per touched group, plus \
             one batch trailer per run"
        );
        assert_eq!(wal.len(), 52);
    }

    #[test]
    fn flush_splits_batches_across_segment_rolls() {
        // 10-record batches into 4-record segments: flush must split the
        // staged bytes across rolls without losing order or records.
        let disk = SharedMem::default();
        {
            let mut wal = CommitWal::open(Box::new(disk.clone()), opts(2, 4));
            for batch in 0..3u64 {
                for i in 0..10 {
                    wal.append_buffered(rec(batch * 10 + i));
                }
                assert!(wal.flush());
            }
            assert_eq!(wal.write_failures(), 0);
            assert!(
                wal.segments().iter().filter(|s| s.sealed).count() >= 2,
                "10-record batches over 4-record segments must seal: {:?}",
                wal.segments()
            );
        }
        let wal = CommitWal::open(Box::new(disk), opts(2, 4));
        assert_eq!(wal.len(), 30, "reopen must recover every flushed record");
        for (i, r) in wal.records().iter().enumerate() {
            assert_eq!(*r, rec(i as u64));
        }
    }

    #[test]
    fn batched_storage_decodes_identical_to_per_record_appends() {
        // The durable *records* must not depend on how appends were
        // batched (trailer density differs — per-record appends close
        // every record with its own trailer — so raw bytes legitimately
        // differ, but every segment decodes to the same record stream
        // and recovery is identical).
        let per_record = SharedMem::default();
        let batched = SharedMem::default();
        {
            let mut a = CommitWal::open(Box::new(per_record.clone()), opts(4, 8));
            let mut b = CommitWal::open(Box::new(batched.clone()), opts(4, 8));
            for sn in 0..30 {
                a.append(rec(sn));
            }
            for chunk in (0..30u64).collect::<Vec<_>>().chunks(7) {
                for &sn in chunk {
                    b.append_buffered(rec(sn));
                }
                assert!(b.flush());
            }
        }
        let a = per_record.0.lock().unwrap().segments.clone();
        let b = batched.0.lock().unwrap().segments.clone();
        let keys: Vec<(u32, u64)> = a.keys().copied().collect();
        assert_eq!(keys, b.keys().copied().collect::<Vec<_>>());
        for key in keys {
            let da = decode_segment(&a[&key]);
            let db = decode_segment(&b[&key]);
            assert_eq!(da.records, db.records, "segment {key:?} records differ");
            assert!(da.clean_end && db.clean_end, "both streams end cleanly");
        }
        let wa = CommitWal::open(Box::new(per_record), opts(4, 8));
        let wb = CommitWal::open(Box::new(batched), opts(4, 8));
        assert_eq!(wa.records(), wb.records());
    }

    #[test]
    fn trailer_classifies_torn_mid_batch_vs_clean_end() {
        let dir = std::env::temp_dir().join(format!("ladon-wal-trailer-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut wal =
                CommitWal::open(Box::new(FileBackend::open_dir(&dir).unwrap()), opts(1, 4));
            for batch in 0..3u64 {
                for i in 0..4 {
                    wal.append_buffered(rec(batch * 4 + i));
                }
                assert!(wal.flush());
            }
        }
        // Healthy reopen: every scanned stream ends at a trailer.
        {
            let wal = CommitWal::open(Box::new(FileBackend::open_dir(&dir).unwrap()), opts(1, 4));
            let stats = wal.load_stats();
            assert_eq!(stats.records_torn, 0);
            assert_eq!(stats.records_unacked_lost, 0);
            assert_eq!(
                stats.segments_clean_end, stats.segments_scanned,
                "clean flushes must leave clean ends: {stats:?}"
            );
            assert_eq!(wal.len(), 12);
        }
        // Tear a sealed segment mid-batch (drop its trailing trailer plus
        // a few record bytes): the shortfall is acknowledged loss.
        let mut segs: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "seg"))
            .collect();
        segs.sort();
        let victim = &segs[0];
        let bytes = std::fs::read(victim).unwrap();
        std::fs::write(victim, &bytes[..bytes.len() - TRAILER_LEN - 7]).unwrap();
        let wal = CommitWal::open(Box::new(FileBackend::open_dir(&dir).unwrap()), opts(1, 4));
        let stats = wal.load_stats();
        assert!(
            stats.records_torn > 0,
            "a mid-batch tear of a counted segment is acknowledged loss: {stats:?}"
        );
        assert_eq!(stats.records_unacked_lost, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Storage that drops one staged append on the floor (reporting the
    /// failure) while every other operation — including the manifest
    /// publish that absorbs the staged records' metadata — succeeds.
    /// Models a transient write error the WAL alarms on.
    struct DropOneAppend {
        inner: SharedMem,
        drop_at: u64,
        appends: u64,
    }

    impl WalBackend for DropOneAppend {
        fn append_segment_batch(
            &mut self,
            group: u32,
            seq: u64,
            records: &[u8],
            trailer: &[u8],
        ) -> bool {
            self.appends += 1;
            if self.appends == self.drop_at {
                return false;
            }
            self.inner
                .append_segment_batch(group, seq, records, trailer)
        }
        fn sync_group(&mut self, group: u32) -> bool {
            self.inner.sync_group(group)
        }
        fn write_segment(&mut self, group: u32, seq: u64, bytes: &[u8]) -> bool {
            self.inner.write_segment(group, seq, bytes)
        }
        fn read_segment(&mut self, group: u32, seq: u64) -> Option<Vec<u8>> {
            self.inner.read_segment(group, seq)
        }
        fn delete_segment(&mut self, group: u32, seq: u64) -> bool {
            self.inner.delete_segment(group, seq)
        }
        fn publish_manifest(&mut self, bytes: &[u8]) -> bool {
            self.inner.publish_manifest(bytes)
        }
        fn load_manifest(&mut self) -> Option<Vec<u8>> {
            self.inner.load_manifest()
        }
        fn list_segments(&mut self) -> Vec<(u32, u64)> {
            self.inner.list_segments()
        }
        fn io_stats(&self) -> WalIoStats {
            self.inner.io_stats()
        }
    }

    #[test]
    fn never_acknowledged_suffix_is_not_counted_as_torn() {
        // A failed append whose batch still seals into the manifest used
        // to read back as `records_torn` — but those records were never
        // acknowledged (the flush alarmed). The trailer proves the
        // stream ends at the previous acknowledgement boundary, so the
        // shortfall now lands in `records_unacked_lost`.
        let disk = SharedMem::default();
        {
            let backend = DropOneAppend {
                inner: disk.clone(),
                drop_at: 2, // the second batch's single-group append
                appends: 0,
            };
            let mut wal = CommitWal::open(Box::new(backend), opts(1, 4));
            for i in 0..2 {
                wal.append_buffered(rec(i));
            }
            assert!(wal.flush(), "first batch lands clean");
            for i in 2..4 {
                wal.append_buffered(rec(i));
            }
            assert!(!wal.flush(), "the dropped append must alarm");
            assert_eq!(wal.write_failures(), 1);
        }
        let wal = CommitWal::open(Box::new(disk), opts(1, 4));
        let stats = wal.load_stats();
        assert_eq!(
            stats.records_torn, 0,
            "never-acknowledged records must not read as torn: {stats:?}"
        );
        assert!(
            stats.records_unacked_lost > 0,
            "the alarmed suffix is classified unacknowledged: {stats:?}"
        );
        assert_eq!(wal.len(), 2, "the acknowledged prefix survives");
    }

    /// Storage whose staged appends fail (nothing lands, `false`
    /// reported) while an externally shared flag is raised — a transient
    /// write-error window without a crash. Syncs, rolls, and manifest
    /// publishes keep succeeding, so a later seal publishes the absorbed
    /// (inflated) record count.
    struct FailingAppends {
        inner: SharedMem,
        failing: Arc<std::sync::atomic::AtomicBool>,
    }

    impl WalBackend for FailingAppends {
        fn append_segment_batch(
            &mut self,
            group: u32,
            seq: u64,
            records: &[u8],
            trailer: &[u8],
        ) -> bool {
            if self.failing.load(std::sync::atomic::Ordering::SeqCst) {
                return false;
            }
            self.inner
                .append_segment_batch(group, seq, records, trailer)
        }
        fn sync_group(&mut self, group: u32) -> bool {
            self.inner.sync_group(group)
        }
        fn write_segment(&mut self, group: u32, seq: u64, bytes: &[u8]) -> bool {
            self.inner.write_segment(group, seq, bytes)
        }
        fn read_segment(&mut self, group: u32, seq: u64) -> Option<Vec<u8>> {
            self.inner.read_segment(group, seq)
        }
        fn delete_segment(&mut self, group: u32, seq: u64) -> bool {
            self.inner.delete_segment(group, seq)
        }
        fn publish_manifest(&mut self, bytes: &[u8]) -> bool {
            self.inner.publish_manifest(bytes)
        }
        fn load_manifest(&mut self) -> Option<Vec<u8>> {
            self.inner.load_manifest()
        }
        fn list_segments(&mut self) -> Vec<(u32, u64)> {
            self.inner.list_segments()
        }
        fn io_stats(&self) -> WalIoStats {
            self.inner.io_stats()
        }
    }

    #[test]
    fn failed_write_without_crash_reopens_as_unacked_lost_never_torn() {
        // An alarmed failed write whose batch the NEXT seal publishes
        // (inflated count in the manifest) must reopen as
        // `records_unacked_lost` — the stream still ends at the previous
        // acknowledgement trailer — never as `records_torn`. Swept at
        // both ends of the lane-group matrix.
        for groups in [1u32, 4] {
            let disk = SharedMem::default();
            let failing = Arc::new(std::sync::atomic::AtomicBool::new(false));
            {
                let backend = FailingAppends {
                    inner: disk.clone(),
                    failing: failing.clone(),
                };
                // segment_records = 4: the failed batch's absorbed
                // records fill and seal every chain's segment, so the
                // seal publishes the inflated count.
                let mut wal = CommitWal::open(Box::new(backend), opts(groups, 4));
                wal.append_buffered(rec_masked(0, u64::MAX));
                wal.append_buffered(rec_masked(1, u64::MAX));
                assert!(wal.flush(), "groups={groups}: first batch lands clean");
                failing.store(true, std::sync::atomic::Ordering::SeqCst);
                wal.append_buffered(rec_masked(2, u64::MAX));
                wal.append_buffered(rec_masked(3, u64::MAX));
                assert!(!wal.flush(), "groups={groups}: the failed batch must alarm");
                assert_eq!(wal.write_failures(), 1);
                failing.store(false, std::sync::atomic::Ordering::SeqCst);
                wal.append_buffered(rec_masked(4, u64::MAX));
                wal.append_buffered(rec_masked(5, u64::MAX));
                assert!(wal.flush(), "groups={groups}: post-alarm batch lands clean");
            }
            let wal = CommitWal::open(Box::new(disk), opts(groups, 4));
            let stats = wal.load_stats();
            assert_eq!(
                stats.records_torn, 0,
                "groups={groups}: an alarmed failed write must never read as torn: {stats:?}"
            );
            assert_eq!(
                stats.records_unacked_lost,
                2 * groups as u64,
                "groups={groups}: every chain lost exactly the failed batch: {stats:?}"
            );
            assert_eq!(
                wal.len(),
                2,
                "groups={groups}: the acknowledged prefix below the gap survives"
            );
        }
    }

    /// Storage that (a) asks for the writer thread and (b) gates every
    /// staged append on an external channel pair: the writer signals
    /// `entered` when it reaches the batch's append and blocks until
    /// `release` fires (a hung-up gate releases). Lets a test hold a
    /// barrier in flight at a deterministic point.
    struct GatedAppends {
        inner: SharedMem,
        entered: std::sync::mpsc::Sender<()>,
        release: std::sync::mpsc::Receiver<()>,
    }

    impl WalBackend for GatedAppends {
        fn append_segment_batch(
            &mut self,
            group: u32,
            seq: u64,
            records: &[u8],
            trailer: &[u8],
        ) -> bool {
            let _ = self.entered.send(());
            let _ = self.release.recv();
            self.inner
                .append_segment_batch(group, seq, records, trailer)
        }
        fn sync_group(&mut self, group: u32) -> bool {
            self.inner.sync_group(group)
        }
        fn write_segment(&mut self, group: u32, seq: u64, bytes: &[u8]) -> bool {
            self.inner.write_segment(group, seq, bytes)
        }
        fn read_segment(&mut self, group: u32, seq: u64) -> Option<Vec<u8>> {
            self.inner.read_segment(group, seq)
        }
        fn delete_segment(&mut self, group: u32, seq: u64) -> bool {
            self.inner.delete_segment(group, seq)
        }
        fn publish_manifest(&mut self, bytes: &[u8]) -> bool {
            self.inner.publish_manifest(bytes)
        }
        fn load_manifest(&mut self) -> Option<Vec<u8>> {
            self.inner.load_manifest()
        }
        fn list_segments(&mut self) -> Vec<(u32, u64)> {
            self.inner.list_segments()
        }
        fn io_stats(&self) -> WalIoStats {
            self.inner.io_stats()
        }
        fn prefers_writer_thread(&self) -> bool {
            true
        }
    }

    #[test]
    fn pipelined_barrier_overlaps_staging_and_acks_only_on_completion() {
        let disk = SharedMem::default();
        let (entered_tx, entered) = std::sync::mpsc::channel();
        let (release, release_rx) = std::sync::mpsc::channel();
        let mut wal = CommitWal::open(
            Box::new(GatedAppends {
                inner: disk.clone(),
                entered: entered_tx,
                release: release_rx,
            }),
            opts(1, 1024),
        );
        assert!(wal.pipelined(), "the backend asked for the writer thread");
        wal.append_buffered(rec(0));
        wal.append_buffered(rec(1));
        let io_at_submit = wal.io_stats();
        assert!(wal.submit_flush());
        entered.recv().expect("writer reached the batch's append");
        // The barrier is provably in flight; nothing may be acknowledged.
        assert!(wal.has_inflight_flush());
        assert_eq!(wal.inflight_len(), 2);
        assert_eq!(wal.len(), 0, "no acknowledgement before durability");
        assert_eq!(wal.staged_len(), 0);
        // Double-buffered scratch: staging proceeds against the in-flight
        // barrier without blocking, and without acknowledging anything.
        wal.append_buffered(rec(2));
        assert_eq!(wal.staged_len(), 1);
        assert_eq!(wal.len(), 0);
        assert_eq!(
            wal.io_stats(),
            io_at_submit,
            "in-flight I/O reports as of submission: completed barriers only"
        );
        // Resolve the token: acknowledgement happens exactly here.
        release.send(()).unwrap();
        assert_eq!(wal.complete_flush(), Some(true));
        assert_eq!(wal.len(), 2);
        assert!(!wal.has_inflight_flush());
        // Drain the second batch through the same writer (the dropped
        // gate releases every later append immediately).
        drop(release);
        assert!(wal.flush());
        assert_eq!(wal.len(), 3);
        // Dropping the WAL resolves/joins the writer; the storage must
        // hold every acknowledged record.
        drop(wal);
        let reopened = CommitWal::open(Box::new(disk), opts(1, 1024));
        assert_eq!(reopened.len(), 3);
        assert_eq!(reopened.load_stats().records_torn, 0);
        assert_eq!(reopened.load_stats().records_unacked_lost, 0);
    }

    #[test]
    fn submit_complete_pair_is_flush_in_counts_and_content() {
        // The split barrier must cost exactly what the synchronous
        // composition costs: same backend op counts, same bytes, same
        // storage content.
        let run = |split: bool| -> (WalIoStats, Vec<u8>) {
            let mut wal = CommitWal::in_memory_with(opts(2, 8));
            for batch in 0..4u64 {
                for i in 0..3u64 {
                    wal.append_buffered(rec(batch * 3 + i));
                }
                if split {
                    assert!(wal.submit_flush());
                    assert_eq!(wal.complete_flush(), Some(true));
                } else {
                    assert!(wal.flush());
                }
            }
            (wal.io_stats(), wal.to_bytes())
        };
        let (io_split, bytes_split) = run(true);
        let (io_flush, bytes_flush) = run(false);
        assert_eq!(io_split, io_flush);
        assert_eq!(bytes_split, bytes_flush);
    }

    #[test]
    fn file_backend_opens_are_per_segment_not_per_append() {
        let dir = std::env::temp_dir().join(format!("ladon-wal-opens-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut wal = CommitWal::open(Box::new(FileBackend::open_dir(&dir).unwrap()), opts(2, 8));
        for sn in 0..64 {
            wal.append(rec_masked(sn, u64::MAX)); // every record, both groups
        }
        assert_eq!(wal.write_failures(), 0);
        let io = wal.io_stats();
        let segments = wal.segments().len() as u64;
        assert_eq!(
            io.segment_opens, segments,
            "each segment must be opened exactly once over its lifetime"
        );
        assert_eq!(io.appends, 64 * 2, "one staged write per record per group");
        assert!(
            io.segment_opens < io.appends,
            "open count must not scale with appends: {io:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
