//! The commit write-ahead log.
//!
//! Every globally confirmed block is appended *before* it is applied to
//! the state machine, so a crash between append and apply loses nothing:
//! recovery replays the WAL tail on top of the latest snapshot and
//! re-derives the identical state (execution is deterministic, see
//! [`crate::kv`]).
//!
//! A record stores the block *identity* — `(sn, instance, round, rank)`,
//! the batch coordinates `(first_tx, count, bucket)` and the payload
//! digest — not the payload itself: the synthetic workload derives each
//! transaction's op from its id ([`ladon_types::TxOp::for_id`]), so the
//! identity is sufficient to re-execute. Records are length-prefixed and
//! FNV-checksummed; a torn tail (partial final record, e.g. a crash
//! mid-append) is detected and discarded on load.
//!
//! Storage is pluggable: [`MemBackend`] keeps bytes in memory (simulation,
//! tests), [`FileBackend`] appends to a real file with fsync-on-append
//! (examples, benches). The WAL itself is sans-IO: it encodes/decodes and
//! the backend moves bytes.

use ladon_crypto::fnv::Fnv64;
use ladon_types::{Batch, Block, Digest};
use std::io::{Read, Seek, Write};
use std::path::{Path, PathBuf};

/// Record format version (first byte of every record body).
const WAL_VERSION: u8 = 1;
/// Encoded body size: version + sn + instance + round + rank + first_tx +
/// count + bucket + payload_bytes + digest.
const BODY_LEN: usize = 1 + 8 + 4 + 8 + 8 + 8 + 4 + 4 + 8 + 32;

/// One confirmed-block entry in the commit log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// Global ordering index of the block.
    pub sn: u64,
    /// Producing instance.
    pub instance: u32,
    /// Round within the instance.
    pub round: u64,
    /// Block rank.
    pub rank: u64,
    /// First transaction id of the batch.
    pub first_tx: u64,
    /// Number of transactions.
    pub count: u32,
    /// Bucket the batch was cut from.
    pub bucket: u32,
    /// Total payload bytes (bandwidth accounting on replay).
    pub payload_bytes: u64,
    /// Payload digest (integrity binding to the consensus artifact).
    pub payload_digest: Digest,
}

impl WalRecord {
    /// Builds the record for confirmed block `sn`.
    pub fn of_block(sn: u64, block: &Block) -> Self {
        Self {
            sn,
            instance: block.index().0,
            round: block.round().0,
            rank: block.rank().0,
            first_tx: block.batch.first_tx.0,
            count: block.batch.count,
            bucket: block.batch.bucket,
            payload_bytes: block.batch.payload_bytes,
            payload_digest: block.header.payload_digest,
        }
    }

    /// The batch this record re-materializes for replay.
    pub fn batch(&self) -> Batch {
        Batch {
            first_tx: ladon_types::TxId(self.first_tx),
            count: self.count,
            payload_bytes: self.payload_bytes,
            arrival_sum_ns: 0,
            earliest_arrival: ladon_types::TimeNs::ZERO,
            bucket: self.bucket,
            refs: Vec::new(),
        }
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        let mut body = [0u8; BODY_LEN];
        let mut at = 0usize;
        let mut put = |bytes: &[u8]| {
            body[at..at + bytes.len()].copy_from_slice(bytes);
            at += bytes.len();
        };
        put(&[WAL_VERSION]);
        put(&self.sn.to_le_bytes());
        put(&self.instance.to_le_bytes());
        put(&self.round.to_le_bytes());
        put(&self.rank.to_le_bytes());
        put(&self.first_tx.to_le_bytes());
        put(&self.count.to_le_bytes());
        put(&self.bucket.to_le_bytes());
        put(&self.payload_bytes.to_le_bytes());
        put(&self.payload_digest.0);
        debug_assert_eq!(at, BODY_LEN);
        let checksum = Fnv64::new().write(&body).finish();
        out.extend_from_slice(&(BODY_LEN as u32).to_le_bytes());
        out.extend_from_slice(&body);
        out.extend_from_slice(&checksum.to_le_bytes());
    }

    fn decode(body: &[u8]) -> Option<Self> {
        if body.len() != BODY_LEN || body[0] != WAL_VERSION {
            return None;
        }
        let mut at = 1usize;
        let mut take = |n: usize| {
            let s = &body[at..at + n];
            at += n;
            s
        };
        let u64le = |s: &[u8]| u64::from_le_bytes(s.try_into().unwrap());
        let u32le = |s: &[u8]| u32::from_le_bytes(s.try_into().unwrap());
        let sn = u64le(take(8));
        let instance = u32le(take(4));
        let round = u64le(take(8));
        let rank = u64le(take(8));
        let first_tx = u64le(take(8));
        let count = u32le(take(4));
        let bucket = u32le(take(4));
        let payload_bytes = u64le(take(8));
        let mut digest = [0u8; 32];
        digest.copy_from_slice(take(32));
        Some(Self {
            sn,
            instance,
            round,
            rank,
            first_tx,
            count,
            bucket,
            payload_bytes,
            payload_digest: Digest(digest),
        })
    }
}

/// Byte storage behind a [`CommitWal`].
pub trait WalBackend: Send {
    /// Appends `bytes` durably (fsynced before return for file backends).
    /// Returns `false` when the bytes did not reach storage.
    fn append(&mut self, bytes: &[u8]) -> bool;
    /// Reads the whole log back.
    fn load(&mut self) -> Vec<u8>;
    /// Replaces the whole log with `bytes` (compaction). Returns `false`
    /// when the rewrite failed (the caller must keep its in-memory copy).
    fn reset(&mut self, bytes: &[u8]) -> bool;
}

/// In-memory backend (simulation and tests).
#[derive(Default, Clone, Debug)]
pub struct MemBackend {
    bytes: Vec<u8>,
}

impl WalBackend for MemBackend {
    fn append(&mut self, bytes: &[u8]) -> bool {
        self.bytes.extend_from_slice(bytes);
        true
    }
    fn load(&mut self) -> Vec<u8> {
        self.bytes.clone()
    }
    fn reset(&mut self, bytes: &[u8]) -> bool {
        self.bytes = bytes.to_vec();
        true
    }
}

/// File-backed backend with fsync-on-append.
pub struct FileBackend {
    path: PathBuf,
    file: std::fs::File,
}

impl FileBackend {
    /// Opens (or creates) the log file at `path` for appending.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = std::fs::OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&path)?;
        Ok(Self { path, file })
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl WalBackend for FileBackend {
    fn append(&mut self, bytes: &[u8]) -> bool {
        // fsync, not just flush: `File` has no userspace buffer, so
        // `flush()` is a no-op and an OS crash could lose acknowledged
        // records. `sync_data` forces the bytes (and the size metadata
        // needed to read them back) to stable storage.
        self.file
            .write_all(bytes)
            .and_then(|()| self.file.sync_data())
            .is_ok()
    }
    fn load(&mut self) -> Vec<u8> {
        let mut out = Vec::new();
        let _ = self.file.seek(std::io::SeekFrom::Start(0));
        let _ = self.file.read_to_end(&mut out);
        let _ = self.file.seek(std::io::SeekFrom::End(0));
        out
    }
    fn reset(&mut self, bytes: &[u8]) -> bool {
        // Rewrite atomically-enough for the simulation: truncate + append.
        // (Atomic segment rotation is a ROADMAP item.)
        self.file
            .set_len(0)
            .and_then(|()| self.file.seek(std::io::SeekFrom::Start(0)).map(|_| ()))
            .and_then(|()| self.file.write_all(bytes))
            .and_then(|()| self.file.sync_all())
            .is_ok()
    }
}

/// Decodes every intact record in `bytes`, stopping at the first torn or
/// corrupt entry (everything after a bad checksum is untrusted).
pub fn decode_records(bytes: &[u8]) -> Vec<WalRecord> {
    let mut out = Vec::new();
    let mut at = 0usize;
    while at + 4 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        let body_start = at + 4;
        let sum_start = body_start + len;
        if len != BODY_LEN || sum_start + 8 > bytes.len() {
            break; // torn tail
        }
        let body = &bytes[body_start..sum_start];
        let expect = u64::from_le_bytes(bytes[sum_start..sum_start + 8].try_into().unwrap());
        if Fnv64::new().write(body).finish() != expect {
            break; // corrupt record: stop trusting the tail
        }
        match WalRecord::decode(body) {
            Some(r) => out.push(r),
            None => break,
        }
        at = sum_start + 8;
    }
    out
}

/// The commit log: an in-memory mirror of the records past the last
/// snapshot, plus a storage backend holding their encoding.
pub struct CommitWal {
    backend: Box<dyn WalBackend>,
    /// Records currently in the log (ascending, dense `sn`).
    records: Vec<WalRecord>,
    /// Backend writes that reported failure. The in-memory mirror stays
    /// authoritative, and the next successful compaction rewrites the
    /// backend from it, repairing earlier losses — but a crash while this
    /// is nonzero may lose the affected records, so operators must treat
    /// it as a durability alarm.
    write_failures: u64,
}

impl CommitWal {
    /// A WAL over `backend`, replaying whatever the backend already holds.
    pub fn open(mut backend: Box<dyn WalBackend>) -> Self {
        let records = decode_records(&backend.load());
        Self {
            backend,
            records,
            write_failures: 0,
        }
    }

    /// An empty in-memory WAL.
    pub fn in_memory() -> Self {
        Self::open(Box::new(MemBackend::default()))
    }

    /// Appends (and durably stores) one confirmed-block record.
    pub fn append(&mut self, rec: WalRecord) {
        debug_assert!(
            self.records.last().is_none_or(|l| l.sn + 1 == rec.sn),
            "WAL sns must be dense: {:?} then {}",
            self.records.last().map(|l| l.sn),
            rec.sn
        );
        let mut bytes = Vec::with_capacity(4 + BODY_LEN + 8);
        rec.encode_into(&mut bytes);
        if !self.backend.append(&bytes) {
            self.write_failures += 1;
        }
        self.records.push(rec);
    }

    /// Backend writes that reported failure since open (durability alarm).
    pub fn write_failures(&self) -> u64 {
        self.write_failures
    }

    /// Records currently in the log.
    pub fn records(&self) -> &[WalRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Drops records with `sn < upto` (they are covered by a snapshot) and
    /// rewrites the backend.
    pub fn compact(&mut self, upto: u64) {
        let keep_from = self.records.partition_point(|r| r.sn < upto);
        if keep_from == 0 {
            return;
        }
        let mut bytes = Vec::new();
        for r in &self.records[keep_from..] {
            r.encode_into(&mut bytes);
        }
        if self.backend.reset(&bytes) {
            self.records.drain(..keep_from);
        } else {
            // Keep everything in memory; the longer on-disk log is still
            // consistent (recovery skips records a snapshot covers).
            self.write_failures += 1;
        }
    }

    /// The whole log as bytes (for shipping a WAL tail over sync).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut bytes = Vec::new();
        for r in &self.records {
            r.encode_into(&mut bytes);
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(sn: u64) -> WalRecord {
        WalRecord {
            sn,
            instance: (sn % 4) as u32,
            round: sn / 4 + 1,
            rank: sn,
            first_tx: sn * 100,
            count: 7,
            bucket: 1,
            payload_bytes: 3500,
            payload_digest: Digest([sn as u8; 32]),
        }
    }

    #[test]
    fn roundtrip_and_dense_append() {
        let mut wal = CommitWal::in_memory();
        for sn in 0..10 {
            wal.append(rec(sn));
        }
        let decoded = decode_records(&wal.to_bytes());
        assert_eq!(decoded.len(), 10);
        assert_eq!(decoded[3], rec(3));
    }

    #[test]
    fn torn_tail_is_discarded() {
        let mut wal = CommitWal::in_memory();
        for sn in 0..5 {
            wal.append(rec(sn));
        }
        let mut bytes = wal.to_bytes();
        bytes.truncate(bytes.len() - 3); // partial final record
        let decoded = decode_records(&bytes);
        assert_eq!(decoded.len(), 4);
    }

    #[test]
    fn corrupt_record_stops_the_replay() {
        let mut wal = CommitWal::in_memory();
        for sn in 0..5 {
            wal.append(rec(sn));
        }
        let mut bytes = wal.to_bytes();
        let record_size = bytes.len() / 5;
        bytes[2 * record_size + 10] ^= 0xff; // flip a bit inside record 2
        let decoded = decode_records(&bytes);
        assert_eq!(decoded.len(), 2, "replay must stop at the bad checksum");
    }

    #[test]
    fn compaction_drops_snapshotted_prefix() {
        let mut wal = CommitWal::in_memory();
        for sn in 0..20 {
            wal.append(rec(sn));
        }
        wal.compact(15);
        assert_eq!(wal.len(), 5);
        assert_eq!(wal.records()[0].sn, 15);
        // Backend rewritten too: reopening sees only the tail.
        let reopened = decode_records(&wal.to_bytes());
        assert_eq!(reopened.len(), 5);
    }

    #[test]
    fn file_backend_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("ladon-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("commit.wal");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = CommitWal::open(Box::new(FileBackend::open(&path).unwrap()));
            for sn in 0..8 {
                wal.append(rec(sn));
            }
        }
        let wal = CommitWal::open(Box::new(FileBackend::open(&path).unwrap()));
        assert_eq!(wal.len(), 8);
        assert_eq!(wal.records()[7], rec(7));
        let _ = std::fs::remove_file(&path);
    }
}
