//! Blocks and the global ordering key.
//!
//! A block is the tuple `(txs, index, round, rank)` of §3.2. When a block is
//! globally confirmed the replica computes its global ordering index `sn`;
//! `sn` is *not* a field of the block (paper §3.2), so it lives in metrics
//! and orderer outputs instead.

use crate::ids::{InstanceId, Rank, Round};
use crate::time::TimeNs;
use crate::tx::Batch;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A 32-byte content digest (SHA-256 output; computed by `ladon-crypto`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// The all-zero digest, used for nil/placeholder payloads (`⊥`).
    pub const NIL: Self = Self([0u8; 32]);

    /// A short hex prefix for logs.
    pub fn short_hex(&self) -> String {
        self.0[..4].iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d:{}", self.short_hex())
    }
}

/// The ordering key `(rank, index)` with the paper's `≺` relation, plus a
/// `round` component used only as a final tie-break.
///
/// `B ≺ B'` iff `B.rank < B'.rank`, or the ranks are equal and
/// `B.index < B'.index` (§4.2). The derived lexicographic `Ord` on
/// `(rank, index, round)` implements exactly this relation for real blocks:
/// Lemma 2 (intra-instance rank monotonicity) guarantees two real blocks
/// never share `(rank, index)`, so the `round` component never decides
/// between them. It exists for nil (`⊥`) blocks installed by a view change,
/// which deliberately reuse the rank of the preceding certified block in
/// their instance (a fresh rank would break Lemma 2); the round keeps their
/// keys unique and their relative order deterministic on every replica.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct OrderKey {
    /// Monotonic rank assigned at proposal time.
    pub rank: Rank,
    /// Producing instance's index (tie-breaker).
    pub index: InstanceId,
    /// Round within the instance (final tie-break, nil blocks only).
    pub round: Round,
}

impl OrderKey {
    /// Builds an ordering key with a zero round component (a *bar*: bars
    /// compare against block keys but never belong to a block, and a zero
    /// round makes `block < bar` agree with the paper's two-component `≺`).
    pub fn new(rank: Rank, index: InstanceId) -> Self {
        Self {
            rank,
            index,
            round: Round(0),
        }
    }

    /// Builds the full key of a block at `(rank, index, round)`.
    pub fn of_block(rank: Rank, index: InstanceId, round: Round) -> Self {
        Self { rank, index, round }
    }

    /// The initial confirmation bar `(0, 0)` (§4.2).
    pub const INITIAL_BAR: Self = Self {
        rank: Rank(0),
        index: InstanceId(0),
        round: Round(0),
    };
}

impl fmt::Display for OrderKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.rank, self.index)
    }
}

/// Immutable block header: everything except the transaction batch.
///
/// The header is the block's identity `(index, round, rank, digest)` — the
/// tuple of §3.2. The proposing *view* is deliberately excluded: a block
/// re-proposed after a view change is the *same* block, and G-Agreement
/// compares block identities across replicas that may have committed it in
/// different views.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct BlockHeader {
    /// Producing instance (paper: `B.index`).
    pub index: InstanceId,
    /// Round within the instance (paper: `B.round`).
    pub round: Round,
    /// Monotonic rank (paper: `B.rank`).
    pub rank: Rank,
    /// Digest of the transaction batch (paper: `d = hash(txs)`).
    pub payload_digest: Digest,
}

impl BlockHeader {
    /// The ordering key of this block.
    #[inline]
    pub fn key(&self) -> OrderKey {
        OrderKey::of_block(self.rank, self.index, self.round)
    }
}

/// A partially committed / globally confirmable block (§3.2).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Block {
    /// Header (identity + ordering information).
    pub header: BlockHeader,
    /// The transaction batch (synthetic; see [`Batch`]).
    pub batch: Batch,
    /// When the proposing leader generated the block (simulated clock).
    ///
    /// Used by the causal-strength metric (§6.4): a violation occurs when a
    /// block generated *after* another was committed by `f + 1` replicas is
    /// nevertheless ordered *before* it.
    pub proposed_at: TimeNs,
}

impl Block {
    /// The canonical synthetic block at global position `sn`, carrying
    /// `count` derived transactions starting at `first_tx` — the one
    /// constructor execution-layer tests, benches, and examples share so
    /// their roots stay comparable (same identity derivation, same
    /// payload accounting: 500 bytes per tx, instance `sn % 4`, round
    /// `sn / 4 + 1`, rank `sn`).
    pub fn synthetic(sn: u64, first_tx: u64, count: u32) -> Self {
        Self {
            header: BlockHeader {
                index: InstanceId((sn % 4) as u32),
                round: Round(sn / 4 + 1),
                rank: Rank(sn),
                payload_digest: Digest([sn as u8; 32]),
            },
            batch: Batch {
                first_tx: crate::TxId(first_tx),
                count,
                payload_bytes: count as u64 * 500,
                arrival_sum_ns: 0,
                earliest_arrival: TimeNs::ZERO,
                bucket: 0,
                refs: Vec::new(),
            },
            proposed_at: TimeNs::ZERO,
        }
    }

    /// The ordering key of this block.
    #[inline]
    pub fn key(&self) -> OrderKey {
        self.header.key()
    }

    /// Shorthand accessors matching the paper's `B.x` notation.
    #[inline]
    pub fn index(&self) -> InstanceId {
        self.header.index
    }

    /// The block's round within its instance.
    #[inline]
    pub fn round(&self) -> Round {
        self.header.round
    }

    /// The block's monotonic rank.
    #[inline]
    pub fn rank(&self) -> Rank {
        self.header.rank
    }

    /// Whether this is a nil (`⊥`) block delivered on leader timeout.
    #[inline]
    pub fn is_nil(&self) -> bool {
        self.batch.is_empty() && self.header.payload_digest == Digest::NIL
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(rank: u64, idx: u32) -> OrderKey {
        OrderKey::new(Rank(rank), InstanceId(idx))
    }

    #[test]
    fn order_key_matches_paper_precedence() {
        // Lower rank wins.
        assert!(key(1, 5) < key(2, 0));
        // Equal rank: lower instance index wins.
        assert!(key(3, 0) < key(3, 1));
        // Reflexivity of equality.
        assert_eq!(key(3, 1), key(3, 1));
    }

    #[test]
    fn fig3_example_bar_comparison() {
        // Fig. 3: bar = (3, 1). B(rank=2,idx=1) ≺ bar; B(rank=3,idx=0) ≺ bar
        // (same rank, smaller index); B(rank=3,idx=2) is NOT ≺ bar.
        let bar = key(3, 1);
        assert!(key(2, 1) < bar);
        assert!(key(3, 0) < bar);
        assert!(key(3, 2) > bar);
    }

    #[test]
    fn initial_bar_is_zero() {
        assert_eq!(OrderKey::INITIAL_BAR, key(0, 0));
    }

    #[test]
    fn digest_debug_short() {
        let mut d = Digest::NIL;
        d.0[0] = 0xab;
        assert_eq!(format!("{:?}", d), "d:ab000000");
    }

    #[test]
    fn nil_block_detection() {
        let b = Block {
            header: BlockHeader {
                index: InstanceId(0),
                round: Round(1),
                rank: Rank(0),
                payload_digest: Digest::NIL,
            },
            batch: Batch::empty(0),
            proposed_at: TimeNs::ZERO,
        };
        assert!(b.is_nil());
        assert_eq!(
            b.key(),
            OrderKey::of_block(Rank(0), InstanceId(0), Round(1))
        );
    }

    #[test]
    fn round_breaks_ties_only_within_equal_rank_and_index() {
        // Two nil blocks of the same instance sharing a rank stay distinct
        // and order by round.
        let a = OrderKey::of_block(Rank(5), InstanceId(1), Round(2));
        let b = OrderKey::of_block(Rank(5), InstanceId(1), Round(3));
        assert!(a < b);
        // A bar at (5, 1) sits below both per the paper's strict `≺`.
        let bar = key(5, 1);
        assert!(a > bar && b > bar);
        // The round never overrides rank or instance.
        assert!(OrderKey::of_block(Rank(4), InstanceId(3), Round(99)) < a);
        assert!(OrderKey::of_block(Rank(5), InstanceId(0), Round(99)) < a);
    }
}
