//! System configuration mirroring the paper's evaluation settings (§6.1).

use crate::ids::{Epoch, Rank};
use crate::time::TimeNs;
use serde::{Deserialize, Serialize};

/// Number of fixed Merkle lanes the execution keyspace is partitioned
/// into. This is a *protocol constant*, not a tuning knob: every key maps
/// to one of these lanes by hash, each lane maintains an incrementally
/// updated content root, and the checkpoint state root is a digest over
/// the ordered lane-root vector. Keeping the partition fixed is what makes
/// the state root bit-identical across replicas regardless of how many
/// parallel execution workers ([`SystemConfig::exec_lanes`]) each replica
/// runs — workers merely group lanes; they never change the lane layout.
pub const MERKLE_LANES: u32 = 64;

/// Network environment preset (§6.1 deployment settings).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum NetEnv {
    /// Single data center, 1 Gbps NICs, sub-millisecond RTT.
    Lan,
    /// Four AWS regions (France, Virginia, Sydney, Tokyo), 1 Gbps NICs.
    Wan,
}

impl NetEnv {
    /// The paper's total block rate for this environment (blocks/s summed
    /// over all leaders): 16 in WAN, 32 in LAN.
    pub fn default_total_block_rate(self) -> f64 {
        match self {
            NetEnv::Wan => 16.0,
            NetEnv::Lan => 32.0,
        }
    }
}

/// Which Multi-BFT protocol composition to run.
///
/// The first five use PBFT instances (§6); the last two use chained
/// HotStuff instances (Appendix D).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum ProtocolKind {
    /// Ladon with PBFT instances (dynamic global ordering, Algorithm 1+2).
    LadonPbft,
    /// Ladon-opt: Ladon-PBFT with the aggregate-signature rank refinement
    /// (§5.3), reducing pre-prepare complexity from O(n²) to O(n).
    LadonOptPbft,
    /// ISS: pre-determined ordering, ⊥-delivery on leader timeout.
    IssPbft,
    /// RCC: pre-determined ordering, wait-free lag-based leader removal.
    RccPbft,
    /// Mir-BFT: pre-determined ordering, epoch change on leader suspicion.
    MirPbft,
    /// DQBFT: a dedicated ordering instance sequences other instances'
    /// partially committed blocks.
    DqbftPbft,
    /// Ladon with chained HotStuff instances (Appendix D).
    LadonHotStuff,
    /// ISS with chained HotStuff instances (Appendix D baseline).
    IssHotStuff,
}

impl ProtocolKind {
    /// Short display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            ProtocolKind::LadonPbft => "Ladon",
            ProtocolKind::LadonOptPbft => "Ladon-opt",
            ProtocolKind::IssPbft => "ISS",
            ProtocolKind::RccPbft => "RCC",
            ProtocolKind::MirPbft => "Mir",
            ProtocolKind::DqbftPbft => "DQBFT",
            ProtocolKind::LadonHotStuff => "Ladon-HotStuff",
            ProtocolKind::IssHotStuff => "ISS-HotStuff",
        }
    }

    /// True for the protocols whose global ordering is dynamic (rank-based
    /// or sequenced at confirmation time) rather than pre-determined.
    pub fn is_dynamic_ordering(self) -> bool {
        matches!(
            self,
            ProtocolKind::LadonPbft
                | ProtocolKind::LadonOptPbft
                | ProtocolKind::DqbftPbft
                | ProtocolKind::LadonHotStuff
        )
    }

    /// True for HotStuff-instance compositions.
    pub fn is_hotstuff(self) -> bool {
        matches!(
            self,
            ProtocolKind::LadonHotStuff | ProtocolKind::IssHotStuff
        )
    }

    /// The five PBFT-based protocols compared in Fig. 5/6 and Table 2.
    pub const PBFT_FAMILY: [ProtocolKind; 5] = [
        ProtocolKind::LadonPbft,
        ProtocolKind::IssPbft,
        ProtocolKind::RccPbft,
        ProtocolKind::MirPbft,
        ProtocolKind::DqbftPbft,
    ];
}

/// Full system configuration.
///
/// Defaults follow §6.1: `m = n` (every replica leads one instance),
/// 500-byte transactions, 4096-transaction batches, epoch length
/// `l(e) = 64`, and the per-environment total block rate.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Total number of replicas `n = 3f + 1`.
    pub n: usize,
    /// Number of consensus instances `m` (paper evaluation: `m = n`).
    pub m: usize,
    /// Network environment.
    pub env: NetEnv,
    /// Transaction payload size in bytes (paper: 500).
    pub tx_bytes: u64,
    /// Maximum transactions per batch (paper: 4096).
    pub batch_size: u32,
    /// Total block rate across all leaders, blocks/s (paper: 16 WAN, 32 LAN).
    pub total_block_rate: f64,
    /// Epoch length in ranks, `l(e)` (paper: 64).
    pub epoch_length: u64,
    /// PBFT/HotStuff view-change timeout (paper Fig. 8 uses 10 s).
    pub view_change_timeout: TimeNs,
    /// Number of Ladon-opt sub-keys `K` per replica (§5.3).
    pub opt_keys: u32,
    /// RCC: remove a leader once its instance lags by this many blocks.
    ///
    /// Note: §6.1's honest stragglers stay under every detection
    /// mechanism (the paper measures RCC losing ≈ 90 % throughput to one
    /// straggler, so its removal never fires there); the experiment runner
    /// raises this threshold for straggler runs accordingly.
    pub rcc_lag_threshold: u64,
    /// ISS/Mir: deliver ⊥ (ISS) or suspect the leader (Mir) if an instance
    /// produces nothing for this long. The paper's honest stragglers stay
    /// under this bound so the mechanisms do not fire.
    pub quiet_leader_timeout: TimeNs,
    /// Parallel execution lanes: how many workers apply a confirmed
    /// block's ops concurrently. Workers own disjoint groups of the
    /// [`MERKLE_LANES`] fixed key partitions, so any value in
    /// `1..=MERKLE_LANES` yields the same state roots — this knob trades
    /// CPU parallelism only, never determinism.
    pub exec_lanes: u32,
    /// Accounts in the execution key space (the synthetic workload derives
    /// every op over `0..exec_keyspace`).
    pub exec_keyspace: u32,
    /// Snapshot serving minimum gap: a sync responder ships its latest
    /// execution snapshot only when the requester's applied frontier lags
    /// it by at least this many blocks. Smaller gaps are repaired by log
    /// entries alone — shipping a full-keyspace snapshot to a replica one
    /// block behind wastes ~50 KiB per probe.
    pub snapshot_min_lag: u64,
    /// Lane groups the commit WAL partitions the [`MERKLE_LANES`] Merkle
    /// lanes into (`1..=MERKLE_LANES`). Each group owns an independent
    /// segment chain, and a confirmed block's record is fanned out to the
    /// chains its ops' lanes map to — the layout that lets recovery skip
    /// whole chains a snapshot already covers and replay only dirty
    /// lanes. More groups = finer recovery selectivity, more per-append
    /// fan-out (records are ~100-byte identities, so the duplication is
    /// cheap).
    pub wal_lane_groups: u32,
    /// Records a WAL segment holds before it is sealed (immutable) and
    /// its lane group rolls to a fresh active segment (≥ 1). Smaller
    /// segments = finer-grained compaction deletes and recovery skips,
    /// more manifest churn.
    pub wal_segment_records: u32,
    /// Cross-drain group-commit threshold (≥ 1): the node accumulates
    /// staged WAL records across confirmed-queue drains and issues the
    /// flush + apply barrier once at least this many are staged (epoch
    /// checkpoints and snapshot installs always drain first). `1` —
    /// the default — flushes every drain, i.e. plain per-drain group
    /// commit. Larger values amortize fsync barriers further under high
    /// confirm rates at the cost of acknowledgement latency: staged
    /// records are unacknowledged, and a crash loses exactly them.
    pub wal_flush_max_records: u32,
    /// Time-based flush policy for the pipelined WAL writer: when > 0,
    /// the node arms a recurring flush timer with this period and
    /// submits whatever is staged (and resolves whatever is in flight)
    /// on each tick, bounding the acknowledgement latency a large
    /// `wal_flush_max_records` threshold can add under a lull in
    /// confirms. `0` — the default — disables the timer; the size
    /// threshold, epoch checkpoints, and snapshot installs remain the
    /// only flush triggers. Deterministic in simulation: ticks are sim
    /// timers, not wall clocks.
    pub wal_flush_interval_ms: u32,
    /// Delta state sync: maximum snapshot chunks a responder packs into
    /// one `SyncResponse` (`1..=MERKLE_LANES`). A lagging replica
    /// advertises its own lane roots; the responder ships only lanes
    /// whose roots differ, at most this many per response, and the
    /// requester resumes from a cursor — so a transfer is paced in
    /// bounded messages and a partially fetched install survives peer
    /// rotation and crashes. The default of [`MERKLE_LANES`] ships any
    /// delta in one response (lowest sync latency); smaller values
    /// bound per-message bytes at millions-of-accounts state sizes.
    pub sync_chunks_per_response: u32,
    /// Durability degradation trigger (≥ 1): consecutive failed WAL
    /// flush barriers a node tolerates before it enters `Degraded` mode
    /// — where it stops acknowledging/staging new confirmed blocks and
    /// stops serving snapshots, and instead retries the failed flush on
    /// a backoff timer until the backend heals (or a peer snapshot
    /// reinstall overtakes it). `1` degrades on the first failure;
    /// larger values ride out transient hiccups at the cost of more
    /// alarmed-but-applied blocks before the gate closes.
    pub wal_failure_degrade_threshold: u32,
    /// Base delay of the degraded-mode flush retry timer, in
    /// milliseconds (≥ 1). Each failed retry doubles the delay up to
    /// [`Self::wal_retry_backoff_max_ms`]. Deterministic in simulation:
    /// retries are sim timers, not wall clocks.
    pub wal_retry_backoff_ms: u32,
    /// Cap on the degraded-mode retry backoff, in milliseconds (≥ the
    /// base): keeps a long outage probing at a bounded rate instead of
    /// backing off into oblivion.
    pub wal_retry_backoff_max_ms: u32,
    /// Responder-health quarantine threshold (≥ 1): consecutive sync
    /// chunks (or whole responses) from one responder that fail
    /// verification before the requester quarantines it — removing it
    /// from the sync rotation entirely. Honest responders never ship an
    /// unverifiable chunk, so a small threshold only tolerates
    /// re-requests racing a responder's own state advance; unresponsive
    /// (as opposed to Byzantine) peers are handled separately by
    /// timeout-driven exponential backoff.
    pub sync_quarantine_threshold: u32,
}

impl SystemConfig {
    /// Builds the paper's default configuration for `n` replicas in `env`.
    pub fn paper_default(n: usize, env: NetEnv) -> Self {
        Self {
            n,
            m: n,
            env,
            tx_bytes: 500,
            batch_size: 4096,
            total_block_rate: env.default_total_block_rate(),
            epoch_length: 64,
            view_change_timeout: TimeNs::from_secs(10),
            opt_keys: 16,
            rcc_lag_threshold: 16,
            quiet_leader_timeout: TimeNs::from_secs(30),
            exec_lanes: 4,
            exec_keyspace: 4096,
            snapshot_min_lag: 16,
            wal_lane_groups: 8,
            wal_segment_records: 1024,
            wal_flush_max_records: 1,
            wal_flush_interval_ms: 0,
            sync_chunks_per_response: MERKLE_LANES,
            wal_failure_degrade_threshold: 3,
            wal_retry_backoff_ms: 50,
            wal_retry_backoff_max_ms: 1000,
            sync_quarantine_threshold: 3,
        }
    }

    /// Fault threshold `f = ⌊(n − 1) / 3⌋`.
    #[inline]
    pub fn f(&self) -> usize {
        (self.n - 1) / 3
    }

    /// Quorum size `2f + 1`.
    #[inline]
    pub fn quorum(&self) -> usize {
        2 * self.f() + 1
    }

    /// Per-leader proposal interval implied by the total block rate:
    /// each of the `m` leaders proposes every `m / total_rate` seconds.
    pub fn proposal_interval(&self) -> TimeNs {
        TimeNs::from_secs_f64(self.m as f64 / self.total_block_rate)
    }

    /// The rank range `[minRank(e), maxRank(e)]` of epoch `e` (§5.2.1):
    /// `minRank(0) = 0`, `maxRank(e) = minRank(e) + l(e) − 1`,
    /// `minRank(e) = maxRank(e−1) + 1`.
    pub fn rank_range(&self, epoch: Epoch) -> (Rank, Rank) {
        let min = epoch.0 * self.epoch_length;
        (Rank(min), Rank(min + self.epoch_length - 1))
    }

    /// The epoch that owns a given rank.
    pub fn epoch_of_rank(&self, rank: Rank) -> Epoch {
        Epoch(rank.0 / self.epoch_length)
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), crate::error::LadonError> {
        use crate::error::LadonError;
        if self.n < 4 {
            return Err(LadonError::Config(format!(
                "n = {} but BFT requires n >= 4",
                self.n
            )));
        }
        if self.m == 0 || self.m > self.n {
            return Err(LadonError::Config(format!(
                "m = {} must be in 1..={}",
                self.m, self.n
            )));
        }
        if self.epoch_length == 0 {
            return Err(LadonError::Config("epoch_length must be > 0".into()));
        }
        if self.total_block_rate <= 0.0 || self.total_block_rate.is_nan() {
            return Err(LadonError::Config(format!(
                "total_block_rate = {} must be positive",
                self.total_block_rate
            )));
        }
        if self.opt_keys == 0 {
            return Err(LadonError::Config("opt_keys must be > 0".into()));
        }
        if self.exec_lanes == 0 || self.exec_lanes > MERKLE_LANES {
            return Err(LadonError::Config(format!(
                "exec_lanes = {} must be in 1..={MERKLE_LANES}",
                self.exec_lanes
            )));
        }
        if self.exec_keyspace == 0 {
            return Err(LadonError::Config("exec_keyspace must be > 0".into()));
        }
        // Snapshots are captured once per epoch and consensus instances
        // only retain roughly an epoch of committed rounds: a min-lag
        // threshold beyond one epoch's worth of blocks could leave a
        // deep lagger a dead zone where neither log entries (pruned) nor
        // a snapshot (gap "too small") repair it.
        if self.snapshot_min_lag > self.epoch_length {
            return Err(LadonError::Config(format!(
                "snapshot_min_lag = {} must not exceed epoch_length = {} \
                 (the consensus log retention window)",
                self.snapshot_min_lag, self.epoch_length
            )));
        }
        if self.wal_lane_groups == 0 || self.wal_lane_groups > MERKLE_LANES {
            return Err(LadonError::Config(format!(
                "wal_lane_groups = {} must be in 1..={MERKLE_LANES}",
                self.wal_lane_groups
            )));
        }
        if self.wal_segment_records == 0 {
            return Err(LadonError::Config("wal_segment_records must be > 0".into()));
        }
        if self.wal_flush_max_records == 0 {
            return Err(LadonError::Config(
                "wal_flush_max_records must be > 0".into(),
            ));
        }
        if self.sync_chunks_per_response == 0 || self.sync_chunks_per_response > MERKLE_LANES {
            return Err(LadonError::Config(format!(
                "sync_chunks_per_response = {} must be in 1..={MERKLE_LANES}",
                self.sync_chunks_per_response
            )));
        }
        if self.wal_failure_degrade_threshold == 0 {
            return Err(LadonError::Config(
                "wal_failure_degrade_threshold must be > 0".into(),
            ));
        }
        if self.wal_retry_backoff_ms == 0 {
            return Err(LadonError::Config(
                "wal_retry_backoff_ms must be > 0".into(),
            ));
        }
        if self.wal_retry_backoff_max_ms < self.wal_retry_backoff_ms {
            return Err(LadonError::Config(format!(
                "wal_retry_backoff_max_ms = {} must be >= wal_retry_backoff_ms = {}",
                self.wal_retry_backoff_max_ms, self.wal_retry_backoff_ms
            )));
        }
        if self.sync_quarantine_threshold == 0 {
            return Err(LadonError::Config(
                "sync_quarantine_threshold must be > 0".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = SystemConfig::paper_default(16, NetEnv::Wan);
        assert_eq!(c.f(), 5);
        assert_eq!(c.quorum(), 11);
        assert_eq!(c.m, 16);
        assert_eq!(c.tx_bytes, 500);
        assert_eq!(c.batch_size, 4096);
        assert_eq!(c.epoch_length, 64);
        assert!((c.total_block_rate - 16.0).abs() < 1e-9);
        c.validate().unwrap();
    }

    #[test]
    fn lan_block_rate_doubles() {
        let c = SystemConfig::paper_default(16, NetEnv::Lan);
        assert!((c.total_block_rate - 32.0).abs() < 1e-9);
    }

    #[test]
    fn proposal_interval_scales_with_m() {
        let c = SystemConfig::paper_default(16, NetEnv::Wan);
        // 16 instances at 16 blocks/s total => 1 block/s per leader.
        assert_eq!(c.proposal_interval(), TimeNs::from_secs(1));
        let mut c2 = c.clone();
        c2.m = 8;
        assert_eq!(c2.proposal_interval(), TimeNs::from_millis(500));
    }

    #[test]
    fn rank_ranges_tile_the_integers() {
        let c = SystemConfig::paper_default(16, NetEnv::Wan);
        let (min0, max0) = c.rank_range(Epoch(0));
        let (min1, max1) = c.rank_range(Epoch(1));
        assert_eq!(min0, Rank(0));
        assert_eq!(max0, Rank(63));
        assert_eq!(min1, Rank(64));
        assert_eq!(max1, Rank(127));
        assert_eq!(c.epoch_of_rank(Rank(63)), Epoch(0));
        assert_eq!(c.epoch_of_rank(Rank(64)), Epoch(1));
    }

    #[test]
    fn exec_knobs_validated() {
        let c = SystemConfig::paper_default(16, NetEnv::Wan);
        assert_eq!(c.exec_lanes, 4);
        assert_eq!(c.exec_keyspace, 4096);
        assert_eq!(c.snapshot_min_lag, 16);

        let mut bad = c.clone();
        bad.exec_lanes = 0;
        assert!(bad.validate().is_err());

        let mut bad = c.clone();
        bad.exec_lanes = MERKLE_LANES + 1;
        assert!(bad.validate().is_err());

        let mut bad = c.clone();
        bad.exec_keyspace = 0;
        assert!(bad.validate().is_err());

        // A min-lag beyond the log retention window would strand deep
        // laggers (neither entries nor snapshot served).
        let mut bad = c.clone();
        bad.snapshot_min_lag = bad.epoch_length + 1;
        assert!(bad.validate().is_err());

        let mut ok = c;
        ok.exec_lanes = MERKLE_LANES;
        ok.snapshot_min_lag = ok.epoch_length;
        ok.validate().unwrap();
    }

    #[test]
    fn wal_knobs_validated() {
        let c = SystemConfig::paper_default(16, NetEnv::Wan);
        assert_eq!(c.wal_lane_groups, 8);
        assert_eq!(c.wal_segment_records, 1024);

        let mut bad = c.clone();
        bad.wal_lane_groups = 0;
        assert!(bad.validate().is_err());

        let mut bad = c.clone();
        bad.wal_lane_groups = MERKLE_LANES + 1;
        assert!(bad.validate().is_err());

        let mut bad = c.clone();
        bad.wal_segment_records = 0;
        assert!(bad.validate().is_err());

        assert_eq!(c.wal_flush_max_records, 1, "default = flush every drain");
        let mut bad = c.clone();
        bad.wal_flush_max_records = 0;
        assert!(bad.validate().is_err());

        assert_eq!(c.wal_flush_interval_ms, 0, "default = no flush timer");

        let mut ok = c;
        ok.wal_lane_groups = MERKLE_LANES;
        ok.wal_segment_records = 1;
        ok.wal_flush_max_records = 64;
        ok.wal_flush_interval_ms = 5;
        ok.validate().unwrap();
    }

    #[test]
    fn sync_knobs_validated() {
        let c = SystemConfig::paper_default(16, NetEnv::Wan);
        assert_eq!(
            c.sync_chunks_per_response, MERKLE_LANES,
            "default = whole delta in one response"
        );

        let mut bad = c.clone();
        bad.sync_chunks_per_response = 0;
        assert!(bad.validate().is_err());

        let mut bad = c.clone();
        bad.sync_chunks_per_response = MERKLE_LANES + 1;
        assert!(bad.validate().is_err());

        let mut ok = c;
        ok.sync_chunks_per_response = 1;
        ok.validate().unwrap();
    }

    #[test]
    fn fault_knobs_validated() {
        let c = SystemConfig::paper_default(16, NetEnv::Wan);
        assert_eq!(c.wal_failure_degrade_threshold, 3);
        assert_eq!(c.wal_retry_backoff_ms, 50);
        assert_eq!(c.wal_retry_backoff_max_ms, 1000);
        assert_eq!(c.sync_quarantine_threshold, 3);

        let mut bad = c.clone();
        bad.wal_failure_degrade_threshold = 0;
        assert!(bad.validate().is_err());

        let mut bad = c.clone();
        bad.wal_retry_backoff_ms = 0;
        assert!(bad.validate().is_err());

        // The cap must not undercut the base delay.
        let mut bad = c.clone();
        bad.wal_retry_backoff_max_ms = bad.wal_retry_backoff_ms - 1;
        assert!(bad.validate().is_err());

        let mut bad = c.clone();
        bad.sync_quarantine_threshold = 0;
        assert!(bad.validate().is_err());

        let mut ok = c;
        ok.wal_failure_degrade_threshold = 1;
        ok.wal_retry_backoff_ms = 1;
        ok.wal_retry_backoff_max_ms = 1;
        ok.sync_quarantine_threshold = 1;
        ok.validate().unwrap();
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = SystemConfig::paper_default(16, NetEnv::Wan);
        c.n = 3;
        assert!(c.validate().is_err());

        let mut c = SystemConfig::paper_default(16, NetEnv::Wan);
        c.m = 17;
        assert!(c.validate().is_err());

        let mut c = SystemConfig::paper_default(16, NetEnv::Wan);
        c.epoch_length = 0;
        assert!(c.validate().is_err());

        let mut c = SystemConfig::paper_default(16, NetEnv::Wan);
        c.total_block_rate = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn protocol_kind_properties() {
        assert!(ProtocolKind::LadonPbft.is_dynamic_ordering());
        assert!(ProtocolKind::DqbftPbft.is_dynamic_ordering());
        assert!(!ProtocolKind::IssPbft.is_dynamic_ordering());
        assert!(ProtocolKind::LadonHotStuff.is_hotstuff());
        assert!(!ProtocolKind::LadonPbft.is_hotstuff());
        assert_eq!(ProtocolKind::LadonPbft.label(), "Ladon");
        assert_eq!(ProtocolKind::PBFT_FAMILY.len(), 5);
    }
}
