//! Error types for the Ladon workspace.

use std::error::Error;
use std::fmt;

/// Errors surfaced by the Ladon stack.
///
/// Protocol-level *rejections* (an invalid pre-prepare, a stale rank QC) are
/// not errors — honest replicas silently ignore invalid messages, per the
/// paper. `LadonError` covers configuration and harness misuse instead.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LadonError {
    /// Invalid system configuration.
    Config(String),
    /// A cryptographic verification failed where the caller required
    /// success (e.g. verifying a self-generated certificate in tests).
    Crypto(String),
    /// The simulation harness was driven incorrectly (e.g. scheduling an
    /// event in the past).
    Sim(String),
    /// An experiment preset referenced an unknown protocol/figure.
    Experiment(String),
}

impl fmt::Display for LadonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LadonError::Config(s) => write!(f, "configuration error: {s}"),
            LadonError::Crypto(s) => write!(f, "crypto error: {s}"),
            LadonError::Sim(s) => write!(f, "simulation error: {s}"),
            LadonError::Experiment(s) => write!(f, "experiment error: {s}"),
        }
    }
}

impl Error for LadonError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_detail() {
        let e = LadonError::Config("n too small".into());
        assert_eq!(e.to_string(), "configuration error: n too small");
        let e = LadonError::Sim("event in the past".into());
        assert!(e.to_string().contains("simulation error"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn Error) {}
        takes_err(&LadonError::Crypto("bad sig".into()));
    }
}
