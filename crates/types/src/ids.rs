//! Newtype identifiers for replicas, instances, clients, views, rounds,
//! epochs and monotonic ranks.
//!
//! The paper (§3) indexes `n = 3f + 1` replicas, `m` consensus instances
//! (instance `i` has index `i`), protocol views `v`, per-view rounds `n`
//! (we call them [`Round`] to avoid clashing with the replica count),
//! epochs `e` and monotonic ranks. Using distinct newtypes prevents an
//! entire class of "passed the round where the rank was expected" bugs.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_u32 {
    ($(#[$doc:meta])* $name:ident, $short:expr) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index as a `usize`, for table lookups.
            #[inline]
            pub fn as_usize(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                Self(v)
            }
        }

        impl From<usize> for $name {
            fn from(v: usize) -> Self {
                Self(v as u32)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($short, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($short, "{}"), self.0)
            }
        }
    };
}

macro_rules! id_u64 {
    ($(#[$doc:meta])* $name:ident, $short:expr) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
        )]
        pub struct $name(pub u64);

        impl $name {
            /// The zero value (protocol start).
            pub const ZERO: Self = Self(0);

            /// Returns the successor (`self + 1`).
            #[inline]
            #[must_use]
            pub fn next(self) -> Self {
                Self(self.0 + 1)
            }

            /// Returns the predecessor, or `None` at zero.
            #[inline]
            #[must_use]
            pub fn prev(self) -> Option<Self> {
                self.0.checked_sub(1).map(Self)
            }

            /// Returns the raw value as `usize` (for indexing).
            #[inline]
            pub fn as_usize(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> Self {
                Self(v)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($short, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($short, "{}"), self.0)
            }
        }
    };
}

id_u32! {
    /// A replica identifier in `0..n`.
    ReplicaId, "r"
}
id_u32! {
    /// A consensus-instance index in `0..m` (paper: `B.index`).
    InstanceId, "i"
}
id_u32! {
    /// A client identifier.
    ClientId, "c"
}

id_u64! {
    /// A view number within one consensus instance (paper: `v`).
    View, "v"
}
id_u64! {
    /// A round / sequence number within one instance (paper: `n`).
    ///
    /// Rounds start at 1 in the paper's Algorithm 2; round 0 is reserved as
    /// the "before the first proposal" sentinel.
    Round, "n"
}
id_u64! {
    /// An epoch number (paper: `e`).
    Epoch, "e"
}

/// A monotonic rank (paper §4.1).
///
/// Ranks are assigned to blocks at proposal time and drive the dynamic
/// global ordering: blocks are globally ordered by increasing rank with
/// instance index as the tie-breaker (see [`crate::OrderKey`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Rank(pub u64);

impl Rank {
    /// The initial rank (epoch 0 starts at `minRank(0) = 0`).
    pub const ZERO: Self = Self(0);

    /// Returns `self + 1`, the rank a leader assigns after collecting
    /// `rank_m = self` as the highest certified rank.
    #[inline]
    #[must_use]
    pub fn next(self) -> Self {
        Self(self.0 + 1)
    }

    /// Saturating difference `self - other`, used by the Ladon-opt
    /// multi-key encoding (§5.3) where `k = curRank - commitRank`.
    #[inline]
    #[must_use]
    pub fn diff(self, other: Self) -> u64 {
        self.0.saturating_sub(other.0)
    }

    /// Adds a raw offset (Ladon-opt rank recovery: `rank + k`).
    #[inline]
    #[must_use]
    pub fn offset(self, k: u64) -> Self {
        Self(self.0 + k)
    }
}

impl From<u64> for Rank {
    fn from(v: u64) -> Self {
        Self(v)
    }
}

impl fmt::Debug for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rank{}", self.0)
    }
}

impl fmt::Display for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_next_prev_roundtrip() {
        let r = Round(41);
        assert_eq!(r.next(), Round(42));
        assert_eq!(r.next().prev(), Some(r));
        assert_eq!(Round::ZERO.prev(), None);
    }

    #[test]
    fn rank_ordering_is_numeric() {
        assert!(Rank(3) < Rank(10));
        assert_eq!(Rank(3).next(), Rank(4));
    }

    #[test]
    fn rank_diff_saturates() {
        assert_eq!(Rank(5).diff(Rank(2)), 3);
        assert_eq!(Rank(2).diff(Rank(5)), 0);
        assert_eq!(Rank(2).offset(3), Rank(5));
    }

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(format!("{}", ReplicaId(7)), "r7");
        assert_eq!(format!("{}", InstanceId(2)), "i2");
        assert_eq!(format!("{:?}", View(1)), "v1");
        assert_eq!(format!("{:?}", Epoch(0)), "e0");
    }

    #[test]
    fn usize_conversions() {
        assert_eq!(ReplicaId::from(9usize).as_usize(), 9);
        assert_eq!(Round(12).as_usize(), 12);
    }
}
