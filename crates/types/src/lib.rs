//! Core types shared by every crate in the Ladon workspace.
//!
//! This crate is dependency-light on purpose: it defines the identifiers,
//! block/transaction structures, ordering keys, time units, configuration
//! and error types that the consensus instances ([`ladon-pbft`],
//! [`ladon-hotstuff`]), the ordering layer (`ladon-core`) and the simulation
//! substrate (`ladon-sim`) all build upon.
//!
//! [`ladon-pbft`]: https://docs.rs/ladon-pbft
//! [`ladon-hotstuff`]: https://docs.rs/ladon-hotstuff

pub mod block;
pub mod config;
pub mod error;
pub mod ids;
pub mod time;
pub mod tx;
pub mod wire;

pub use block::{Block, BlockHeader, Digest, OrderKey};
pub use config::{NetEnv, ProtocolKind, SystemConfig, MERKLE_LANES};
pub use error::LadonError;
pub use ids::{ClientId, Epoch, InstanceId, Rank, ReplicaId, Round, View};
pub use time::{TimeNs, NS_PER_MS, NS_PER_SEC, NS_PER_US};
pub use tx::{splitmix64, Batch, Tx, TxId, TxOp};
pub use wire::{agg_sig_bytes, rank_set_bytes, sizes, WireSize};
