//! Simulated time: a monotonically increasing nanosecond counter.
//!
//! The discrete-event engine in `ladon-sim` advances a single logical clock;
//! all protocol timers, latencies and metrics are expressed in [`TimeNs`].
//! Keeping the type here (rather than in the simulator) lets protocol crates
//! talk about timeouts without depending on the engine.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Nanoseconds in a microsecond.
pub const NS_PER_US: u64 = 1_000;
/// Nanoseconds in a millisecond.
pub const NS_PER_MS: u64 = 1_000_000;
/// Nanoseconds in a second.
pub const NS_PER_SEC: u64 = 1_000_000_000;

/// A point in (simulated) time, in nanoseconds since the start of the run.
///
/// Also used for durations: `TimeNs` is closed under addition and
/// (saturating) subtraction, and the zero value is the run origin.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct TimeNs(pub u64);

impl TimeNs {
    /// The run origin.
    pub const ZERO: Self = Self(0);
    /// The maximum representable time (used as an "infinite" deadline).
    pub const MAX: Self = Self(u64::MAX);

    /// Builds a time from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Self(ms * NS_PER_MS)
    }

    /// Builds a time from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Self(us * NS_PER_US)
    }

    /// Builds a time from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Self(s * NS_PER_SEC)
    }

    /// Builds a time from fractional seconds (rounds to nanoseconds).
    ///
    /// # Panics
    /// Panics if `s` is negative or not finite.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        Self((s * NS_PER_SEC as f64).round() as u64)
    }

    /// This time expressed in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NS_PER_SEC as f64
    }

    /// This time expressed in fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NS_PER_MS as f64
    }

    /// Saturating subtraction, handy for "elapsed since" computations that
    /// may race with clock origins.
    #[inline]
    #[must_use]
    pub fn saturating_sub(self, other: Self) -> Self {
        Self(self.0.saturating_sub(other.0))
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    #[must_use]
    pub fn checked_add(self, other: Self) -> Option<Self> {
        self.0.checked_add(other.0).map(Self)
    }

    /// Multiplies a duration by an integer factor.
    #[inline]
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, k: u64) -> Self {
        Self(self.0 * k)
    }

    /// Scales a duration by a float factor (rounds to nanoseconds).
    #[inline]
    #[must_use]
    pub fn mul_f64(self, k: f64) -> Self {
        Self((self.0 as f64 * k).round() as u64)
    }
}

impl Add for TimeNs {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl AddAssign for TimeNs {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for TimeNs {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self(self.0 - rhs.0)
    }
}

impl fmt::Debug for TimeNs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= NS_PER_SEC {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= NS_PER_MS {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl fmt::Display for TimeNs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(TimeNs::from_secs(2).0, 2 * NS_PER_SEC);
        assert_eq!(TimeNs::from_millis(5).0, 5 * NS_PER_MS);
        assert_eq!(TimeNs::from_micros(7).0, 7 * NS_PER_US);
        let t = TimeNs::from_secs_f64(1.5);
        assert_eq!(t.0, 1_500_000_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let a = TimeNs::from_millis(10);
        let b = TimeNs::from_millis(4);
        assert_eq!(a + b, TimeNs::from_millis(14));
        assert_eq!(a - b, TimeNs::from_millis(6));
        assert_eq!(b.saturating_sub(a), TimeNs::ZERO);
        assert_eq!(b.mul(3), TimeNs::from_millis(12));
        assert_eq!(TimeNs::from_secs(1).mul_f64(0.25), TimeNs::from_millis(250));
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_duration_panics() {
        let _ = TimeNs::from_secs_f64(-1.0);
    }

    #[test]
    fn debug_formatting_picks_unit() {
        assert_eq!(format!("{:?}", TimeNs::from_secs(3)), "3.000s");
        assert_eq!(format!("{:?}", TimeNs::from_millis(3)), "3.000ms");
        assert_eq!(format!("{:?}", TimeNs(42)), "42ns");
    }
}
