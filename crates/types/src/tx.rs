//! Synthetic transactions and batches.
//!
//! The paper's clients submit 500-byte transactions (the Bitcoin average)
//! which leaders cut into batches of up to 4096. Consensus never inspects
//! transaction bytes, so we model a batch as *counts plus byte sizes plus
//! arrival-time statistics* rather than materializing 2 MB payloads. The
//! network model still charges the full payload size to NIC queues, so
//! bandwidth effects are preserved (see DESIGN.md §5).

use crate::time::TimeNs;
use serde::{Deserialize, Serialize};

/// A globally unique transaction identifier.
///
/// Transaction ids are assigned by the workload generator in submission
/// order, so they double as a causality-friendly "which tx came first"
/// witness in tests.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct TxId(pub u64);

/// The operation a transaction applies to the replicated KV state machine.
///
/// The simulation does not materialize 500-byte payloads (see the module
/// docs), so the operation is a *pure function of the transaction id*:
/// every replica derives the same op for the same `TxId` via
/// [`TxOp::for_id`], which stands in for decoding the payload the client
/// fleet conceptually wrote. This keeps batches as compact counts while
/// making execution fully deterministic across replicas — the property the
/// state-root checkpoints attest to.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum TxOp {
    /// Write `value` at `key`.
    Put {
        /// Target account/key.
        key: u32,
        /// Value to store.
        value: u64,
    },
    /// Read `key` (no state change; counted for read-path metrics).
    Get {
        /// Account/key read.
        key: u32,
    },
    /// Move up to `amount` from `from` to `to` (clamped to the balance).
    Transfer {
        /// Debited account.
        from: u32,
        /// Credited account.
        to: u32,
        /// Requested amount.
        amount: u64,
    },
}

/// SplitMix64 step: advances `state` by the golden-gamma increment and
/// returns the mixed output. The single workspace-wide implementation —
/// `ladon-sim` seeds its xoshiro generator with it, and [`TxOp::for_id`]
/// expands transaction ids into deterministic operations with it.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TxOp {
    /// Derives the deterministic operation of transaction `id` over a key
    /// space of `keyspace` accounts. Mix: 50% put, 30% transfer, 20% get.
    pub fn for_id(id: TxId, keyspace: u32) -> Self {
        debug_assert!(keyspace > 0);
        let mut state = id.0 ^ 0x1ad0_0000_0000_0001;
        let a = splitmix64(&mut state);
        let b = splitmix64(&mut state);
        let key = (a % keyspace as u64) as u32;
        match b % 10 {
            0..=4 => TxOp::Put { key, value: b >> 8 },
            5..=7 => TxOp::Transfer {
                from: key,
                to: ((b >> 32) % keyspace as u64) as u32,
                amount: (b & 0xffff) + 1,
            },
            _ => TxOp::Get { key },
        }
    }
}

/// A materialized transaction: id plus its derived state-machine op.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Tx {
    /// Globally unique id, in submission order.
    pub id: TxId,
    /// The operation the execution layer applies.
    pub op: TxOp,
}

/// A batch of client transactions, as cut by a leader (paper: `txs`).
///
/// `arrival_sum_ns` accumulates each member transaction's client submission
/// time so end-to-end mean latency can be computed exactly without storing
/// per-transaction timestamps:
/// `mean_latency = confirm_time - arrival_sum / count`.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct Batch {
    /// First transaction id in the batch (ids are contiguous per batch).
    pub first_tx: TxId,
    /// Number of transactions.
    pub count: u32,
    /// Total payload bytes (`count * tx_bytes` for the synthetic workload).
    pub payload_bytes: u64,
    /// Sum of member transactions' client-submission times, in ns.
    pub arrival_sum_ns: u128,
    /// Earliest member submission time (for worst-case latency series).
    pub earliest_arrival: TimeNs,
    /// Bucket the transactions were drawn from (rotating buckets, §5.1).
    pub bucket: u32,
    /// Block references `(instance, round)` — used only by DQBFT's
    /// dedicated ordering instance, whose batches sequence other
    /// instances' partially committed blocks instead of transactions.
    pub refs: Vec<(u32, u64)>,
}

impl Batch {
    /// An empty batch (a leader may propose one to keep rounds advancing).
    pub fn empty(bucket: u32) -> Self {
        Self {
            first_tx: TxId(0),
            count: 0,
            payload_bytes: 0,
            arrival_sum_ns: 0,
            earliest_arrival: TimeNs::MAX,
            bucket,
            refs: Vec::new(),
        }
    }

    /// A DQBFT ordering-instance batch carrying block references.
    pub fn of_refs(refs: Vec<(u32, u64)>) -> Self {
        let mut b = Self::empty(0);
        b.payload_bytes = refs.len() as u64 * 12;
        b.refs = refs;
        b
    }

    /// True if the batch carries no transactions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean client-submission time of the member transactions, or `None`
    /// for an empty batch.
    pub fn mean_arrival(&self) -> Option<TimeNs> {
        if self.count == 0 {
            None
        } else {
            Some(TimeNs((self.arrival_sum_ns / self.count as u128) as u64))
        }
    }

    /// Iterator over the member transaction ids.
    pub fn tx_ids(&self) -> impl Iterator<Item = TxId> + '_ {
        (0..self.count as u64).map(move |k| TxId(self.first_tx.0 + k))
    }

    /// Iterator over the member transactions with their derived ops (see
    /// [`TxOp::for_id`]), over a `keyspace`-account state machine.
    pub fn txs(&self, keyspace: u32) -> impl Iterator<Item = Tx> + '_ {
        self.tx_ids().map(move |id| Tx {
            id,
            op: TxOp::for_id(id, keyspace),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_batch() {
        let b = Batch::empty(3);
        assert!(b.is_empty());
        assert_eq!(b.mean_arrival(), None);
        assert_eq!(b.tx_ids().count(), 0);
        assert_eq!(b.bucket, 3);
    }

    #[test]
    fn mean_arrival_is_exact() {
        let b = Batch {
            first_tx: TxId(10),
            count: 4,
            payload_bytes: 2000,
            arrival_sum_ns: (100 + 200 + 300 + 400) as u128,
            earliest_arrival: TimeNs(100),
            bucket: 0,
            refs: Vec::new(),
        };
        assert_eq!(b.mean_arrival(), Some(TimeNs(250)));
        let ids: Vec<_> = b.tx_ids().collect();
        assert_eq!(ids, vec![TxId(10), TxId(11), TxId(12), TxId(13)]);
    }
}
