//! Wire-size model.
//!
//! The simulator charges every message's size to the sender's NIC queue, so
//! bandwidth bottlenecks (the reason single-leader BFT saturates, and the
//! reason DQBFT's ordering leader becomes a bottleneck) emerge naturally.
//! Sizes follow the paper's accounting: 500-byte transactions, 32-byte
//! digests, 64-byte signatures, ~100-byte aggregate signatures (BLS point +
//! signer bitmap), and small fixed headers.

/// Canonical component sizes in bytes.
pub mod sizes {
    /// A single signature (Ed25519-sized; the paper uses BLS for aggregates
    /// and per-message signatures otherwise).
    pub const SIGNATURE: u64 = 64;
    /// An aggregated signature: one 48-byte BLS point plus a signer bitmap
    /// (we round the bitmap into the constant; exact n-dependence is added
    /// by [`super::agg_sig_bytes`]).
    pub const AGG_SIG_POINT: u64 = 48;
    /// A 32-byte digest.
    pub const DIGEST: u64 = 32;
    /// Fixed message header: type, view, round, instance, rank, epoch.
    pub const MSG_HEADER: u64 = 48;
    /// A public key / replica identity reference.
    pub const IDENTITY: u64 = 4;
    /// Per-transaction payload (paper: Bitcoin-average 500 bytes).
    pub const TX: u64 = 500;
}

/// Size of an aggregate signature over a quorum from `n` replicas:
/// one group point plus an `n`-bit signer bitmap.
#[inline]
pub fn agg_sig_bytes(n: usize) -> u64 {
    sizes::AGG_SIG_POINT + n.div_ceil(8) as u64
}

/// Size of a set of `q` individually signed rank messages (the unoptimized
/// Ladon-PBFT `rankSet`, §5.2.2): each entry carries a header, a rank QC
/// reference and a signature.
#[inline]
pub fn rank_set_bytes(q: usize, n: usize) -> u64 {
    q as u64 * (sizes::MSG_HEADER + sizes::SIGNATURE + sizes::IDENTITY) + agg_sig_bytes(n)
}

/// Types that know their serialized size on the wire.
pub trait WireSize {
    /// Serialized size in bytes.
    fn wire_size(&self) -> u64;
}

impl WireSize for crate::tx::Batch {
    fn wire_size(&self) -> u64 {
        // Count/offset metadata plus the payload itself.
        16 + self.payload_bytes
    }
}

impl WireSize for crate::block::BlockHeader {
    fn wire_size(&self) -> u64 {
        sizes::MSG_HEADER + sizes::DIGEST
    }
}

impl WireSize for crate::block::Block {
    fn wire_size(&self) -> u64 {
        self.header.wire_size() + self.batch.wire_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Block, BlockHeader, Digest};
    use crate::ids::{InstanceId, Rank, Round};
    use crate::time::TimeNs;
    use crate::tx::{Batch, TxId};

    #[test]
    fn agg_sig_grows_with_bitmap() {
        assert_eq!(agg_sig_bytes(8), 48 + 1);
        assert_eq!(agg_sig_bytes(9), 48 + 2);
        assert_eq!(agg_sig_bytes(128), 48 + 16);
    }

    #[test]
    fn full_batch_dominates_block_size() {
        // Paper §4.1: rank info + certificates are < 1% of a 2 MB block.
        let batch = Batch {
            first_tx: TxId(0),
            count: 4096,
            payload_bytes: 4096 * 500,
            arrival_sum_ns: 0,
            earliest_arrival: TimeNs::ZERO,
            bucket: 0,
            refs: Vec::new(),
        };
        let block = Block {
            header: BlockHeader {
                index: InstanceId(0),
                round: Round(1),
                rank: Rank(0),
                payload_digest: Digest::NIL,
            },
            batch,
            proposed_at: TimeNs::ZERO,
        };
        let total = block.wire_size();
        assert!(total > 2_000_000);
        let overhead = total - 4096 * 500;
        assert!((overhead as f64) / (total as f64) < 0.01);
    }

    #[test]
    fn rank_set_linear_in_quorum() {
        let q1 = rank_set_bytes(11, 16);
        let q2 = rank_set_bytes(22, 16);
        assert!(q2 > q1);
        assert_eq!(
            q2 - q1,
            11 * (sizes::MSG_HEADER + sizes::SIGNATURE + sizes::IDENTITY)
        );
    }
}
