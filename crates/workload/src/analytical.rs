//! The analytical straggler model of §2.1 (Fig. 2a).
//!
//! With `m` instances where one straggling instance produces a block every
//! `k` rounds and the rest produce one per round, the per-round rates are
//!
//! - partially committed: `R = 1/k + m − 1`
//! - globally confirmed (pre-determined ordering): `R' = m/k`
//!
//! so `R − R'` blocks queue every round and the waiting time of a newly
//! committed block grows linearly: the queue drains at `R'`, giving
//! `delay(t) ≈ queue(t) / R'`.

/// One point of the analytical series.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StragglerPoint {
    /// Round index (time in rounds).
    pub round: u64,
    /// Partially committed blocks so far.
    pub partially_committed: f64,
    /// Globally confirmed blocks so far (pre-determined ordering).
    pub globally_confirmed: f64,
    /// Blocks queued waiting for confirmation.
    pub waiting_blocks: f64,
    /// Waiting time (in rounds) for a block committed at this round.
    pub waiting_time_rounds: f64,
}

/// The per-round partial-commit rate `R = 1/k + m − 1`.
pub fn partial_rate(m: usize, k: f64) -> f64 {
    1.0 / k + (m as f64 - 1.0)
}

/// The per-round confirmation rate `R' = m/k` under pre-determined
/// ordering with one straggler.
pub fn confirm_rate(m: usize, k: f64) -> f64 {
    m as f64 / k
}

/// Generates the Fig. 2a series for `rounds` rounds.
pub fn straggler_series(m: usize, k: f64, rounds: u64) -> Vec<StragglerPoint> {
    assert!(m >= 1 && k >= 1.0, "need at least one instance and k >= 1");
    let r = partial_rate(m, k);
    let rc = confirm_rate(m, k).min(r);
    (1..=rounds)
        .map(|round| {
            let t = round as f64;
            let committed = r * t;
            let confirmed = rc * t;
            let waiting = committed - confirmed;
            StragglerPoint {
                round,
                partially_committed: committed,
                globally_confirmed: confirmed,
                waiting_blocks: waiting,
                waiting_time_rounds: if rc > 0.0 {
                    waiting / rc
                } else {
                    f64::INFINITY
                },
            }
        })
        .collect()
}

/// The throughput ratio `R'/R` — §2.1's "about 1/k of the ideal scenario".
pub fn throughput_fraction(m: usize, k: f64) -> f64 {
    confirm_rate(m, k) / partial_rate(m, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_match_paper_formulas() {
        // m = 16, k = 10: R = 0.1 + 15 = 15.1, R' = 1.6.
        assert!((partial_rate(16, 10.0) - 15.1).abs() < 1e-12);
        assert!((confirm_rate(16, 10.0) - 1.6).abs() < 1e-12);
        // Throughput collapses to ≈ 1/k of ideal: 1.6/15.1 ≈ 0.106.
        let frac = throughput_fraction(16, 10.0);
        assert!((frac - 1.6 / 15.1).abs() < 1e-12);
        assert!(frac < 0.11);
    }

    #[test]
    fn queue_and_delay_grow_linearly() {
        let s = straggler_series(16, 10.0, 100);
        assert_eq!(s.len(), 100);
        // Strictly growing queue and delay.
        for w in s.windows(2) {
            assert!(w[1].waiting_blocks > w[0].waiting_blocks);
            assert!(w[1].waiting_time_rounds > w[0].waiting_time_rounds);
        }
        // Queue slope = R − R' = 13.5 blocks/round.
        let slope = s[99].waiting_blocks - s[98].waiting_blocks;
        assert!((slope - 13.5).abs() < 1e-9);
    }

    #[test]
    fn no_straggler_means_no_queue() {
        // k = 1: R = m, R' = m — nothing waits.
        let s = straggler_series(16, 1.0, 10);
        for p in &s {
            assert!(p.waiting_blocks.abs() < 1e-9);
        }
        assert!((throughput_fraction(16, 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn invalid_k_panics() {
        straggler_series(4, 0.5, 1);
    }
}
