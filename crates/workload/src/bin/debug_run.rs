//! Diagnostic runner: prints per-replica pipeline state for a small run.
//! Useful when bringing up a new protocol composition.

use ladon_core::{MultiBftNode, NodeMsg};
use ladon_sim::Engine;
use ladon_types::{NetEnv, ProtocolKind, TimeNs};
use ladon_workload::ExperimentConfig;

fn main() {
    let proto = match std::env::args().nth(1).as_deref() {
        Some("iss") => ProtocolKind::IssPbft,
        Some("opt") => ProtocolKind::LadonOptPbft,
        Some("dqbft") => ProtocolKind::DqbftPbft,
        Some("hs") => ProtocolKind::LadonHotStuff,
        Some("isshs") => ProtocolKind::IssHotStuff,
        _ => ProtocolKind::LadonPbft,
    };
    let n: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let secs: f64 = std::env::args()
        .nth(3)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5.0);

    let cfg = ExperimentConfig::new(proto, n, NetEnv::Lan)
        .duration_secs(secs)
        .warmup_secs(0.0)
        .with_seed(7);
    let sys = cfg.system();
    let registry = ladon_crypto::KeyRegistry::generate(n, sys.opt_keys, cfg.seed ^ 0x5eed);
    let topo = ladon_sim::Topology::paper(cfg.env, n + 1);
    let mut engine: Engine<NodeMsg> = Engine::new(ladon_sim::NicNetwork::new(topo), cfg.seed);
    for r in 0..n {
        engine.add_actor(Box::new(MultiBftNode::new(ladon_core::NodeConfig {
            sys: sys.clone(),
            protocol: proto,
            me: ladon_types::ReplicaId(r as u32),
            registry: registry.clone(),
            behavior: ladon_core::Behavior::default(),
            sample_interval: None,
        })));
    }
    let end = TimeNs::from_secs_f64(secs);
    engine.add_actor(Box::new(ladon_workload::ClientFleet::new(
        n,
        sys.m,
        sys.total_block_rate * sys.batch_size as f64,
        sys.tx_bytes,
        end,
    )));

    let step = TimeNs::from_secs_f64(secs / 10.0);
    let mut t = TimeNs::ZERO;
    for _ in 0..10 {
        t += step;
        engine.run_until(t);
        let node = engine.actor_as::<MultiBftNode>(0).unwrap();
        println!(
            "t={:>6.2}s commits={:<5} confirms={:<5} waiting={:<4} txs={:<8} epoch={} curRank={} deposited={} events={}",
            t.as_secs_f64(),
            node.metrics.commits.len(),
            node.metrics.confirms.len(),
            node.waiting_count(),
            node.metrics.confirmed_txs,
            node.epoch(),
            node.cur_rank(),
            node.metrics.deposited_txs,
            engine.events_processed(),
        );
    }
    println!("--- per-replica final ---");
    for r in 0..n {
        let node = engine.actor_as::<MultiBftNode>(r).unwrap();
        println!(
            "r{r}: commits={} confirms={} txs={} vc={} epochs={:?}",
            node.metrics.commits.len(),
            node.metrics.confirms.len(),
            node.metrics.confirmed_txs,
            node.metrics.view_changes.len(),
            node.metrics
                .epochs
                .iter()
                .map(|&(t, e)| (t.as_secs_f64(), e))
                .collect::<Vec<_>>(),
        );
    }
}
