//! The open-loop client fleet.
//!
//! One aggregate actor models all clients: every generation tick it emits
//! the transactions that arrived during the tick, grouped per bucket, and
//! sends each group to a uniformly chosen *relay* replica (paper step ①:
//! "a client creates a transaction and sends it to some relay replicas";
//! the relay forwards to the bucket's current leader). Transaction ids
//! are globally unique and increase in submission order.

use ladon_core::{ClientTxs, NodeMsg};
use ladon_sim::{Actor, ActorId, Context};
use ladon_types::{TimeNs, TxId};

/// Timer id used for generation ticks.
const T_GEN: u64 = 1;

/// The client fleet actor.
pub struct ClientFleet {
    /// Number of replicas (actor ids `0..n`).
    n: usize,
    /// Number of buckets (one per instance).
    num_buckets: usize,
    /// Offered load, transactions per second.
    tx_rate: f64,
    /// Transaction payload size.
    tx_bytes: u64,
    /// Generation tick.
    tick: TimeNs,
    /// Stop submitting at this time (lets the tail drain).
    stop_at: TimeNs,
    next_tx: u64,
    /// Fractional carry between ticks.
    carry: f64,
    /// Total transactions submitted.
    pub submitted: u64,
}

impl ClientFleet {
    /// Builds a fleet offering `tx_rate` transactions/s across
    /// `num_buckets` buckets until `stop_at`.
    pub fn new(n: usize, num_buckets: usize, tx_rate: f64, tx_bytes: u64, stop_at: TimeNs) -> Self {
        Self {
            n,
            num_buckets,
            tx_rate,
            tx_bytes,
            tick: TimeNs::from_millis(100),
            stop_at,
            next_tx: 0,
            carry: 0.0,
            submitted: 0,
        }
    }
}

impl Actor<NodeMsg> for ClientFleet {
    fn on_start(&mut self, ctx: &mut dyn Context<NodeMsg>) {
        ctx.set_timer(self.tick, T_GEN);
    }

    fn on_message(&mut self, _from: ActorId, _msg: NodeMsg, _ctx: &mut dyn Context<NodeMsg>) {
        // Replies are aggregated post-run from replica metrics; the fleet
        // receives nothing.
    }

    fn on_timer(&mut self, _id: u64, ctx: &mut dyn Context<NodeMsg>) {
        let now = ctx.now();
        if now >= self.stop_at {
            return;
        }
        ctx.set_timer(self.tick, T_GEN);

        // Transactions that arrived this tick.
        let exact = self.tx_rate * self.tick.as_secs_f64() + self.carry;
        let count = exact.floor() as u64;
        self.carry = exact - count as f64;
        if count == 0 {
            return;
        }

        // Split evenly across buckets; arrivals are uniform over the tick,
        // so the mean arrival time is `now - tick/2`.
        let mean_arrival = now.saturating_sub(TimeNs(self.tick.0 / 2));
        let per_bucket = (count / self.num_buckets as u64).max(1);
        let mut remaining = count;
        for b in 0..self.num_buckets as u32 {
            if remaining == 0 {
                break;
            }
            let take = per_bucket.min(remaining) as u32;
            remaining -= take as u64;
            let group = ClientTxs {
                bucket: b,
                first_tx: TxId(self.next_tx),
                count: take,
                payload_bytes: take as u64 * self.tx_bytes,
                arrival_sum_ns: mean_arrival.0 as u128 * take as u128,
                earliest: mean_arrival,
                forwarded: false,
            };
            self.next_tx += take as u64;
            self.submitted += take as u64;
            // Uniform relay choice.
            let relay = ctx.rng().next_below(self.n as u64) as usize;
            ctx.send(relay, NodeMsg::ClientTxs(group));
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ladon_sim::{Engine, IdealNetwork};

    /// A sink actor that counts received client transactions.
    struct Sink {
        txs: u64,
    }
    impl Actor<NodeMsg> for Sink {
        fn on_message(&mut self, _f: ActorId, msg: NodeMsg, _c: &mut dyn Context<NodeMsg>) {
            if let NodeMsg::ClientTxs(g) = msg {
                self.txs += g.count as u64;
            }
        }
        fn on_timer(&mut self, _t: u64, _c: &mut dyn Context<NodeMsg>) {}
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn fleet_delivers_configured_rate() {
        let mut eng = Engine::new(
            IdealNetwork {
                latency: TimeNs::from_millis(1),
            },
            9,
        );
        let n = 4;
        for _ in 0..n {
            eng.add_actor(Box::new(Sink { txs: 0 }));
        }
        eng.add_actor(Box::new(ClientFleet::new(
            n,
            4,
            10_000.0,
            500,
            TimeNs::from_secs(2),
        )));
        eng.run_until(TimeNs::from_secs(3));
        let total: u64 = (0..n).map(|i| eng.actor_as::<Sink>(i).unwrap().txs).sum();
        // ~10k tps for 2 s, minus the first partial tick.
        assert!(
            (18_000..=20_100).contains(&total),
            "unexpected total {total}"
        );
        let fleet = eng.actor_as::<ClientFleet>(n).unwrap();
        assert_eq!(fleet.submitted, total);
    }

    #[test]
    fn fleet_stops_at_deadline() {
        let mut eng = Engine::new(
            IdealNetwork {
                latency: TimeNs::from_millis(1),
            },
            9,
        );
        eng.add_actor(Box::new(Sink { txs: 0 }));
        eng.add_actor(Box::new(ClientFleet::new(
            1,
            1,
            1000.0,
            500,
            TimeNs::from_millis(500),
        )));
        eng.run_until(TimeNs::from_secs(5));
        let txs = eng.actor_as::<Sink>(0).unwrap().txs;
        assert!(txs <= 500, "submission must stop at the deadline: {txs}");
    }
}
