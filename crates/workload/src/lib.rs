//! Workloads, fault injection, metrics and the experiment runner.
//!
//! This crate turns the protocol stack into runnable experiments:
//!
//! - [`client`]: the open-loop client fleet (offered load, relays).
//! - [`runner`]: [`ExperimentConfig`] → full simulated deployment →
//!   [`Report`] (the entry point every bench target uses).
//! - [`metrics`]: cross-replica aggregation — f+1-confirmed throughput,
//!   end-to-end latency, causal strength (§6.4), timelines.
//! - [`analytical`]: the closed-form straggler model of §2.1 (Fig. 2a).
//! - [`report`]: ASCII table rendering and benchmark scale presets.

pub mod analytical;
pub mod client;
pub mod metrics;
pub mod report;
pub mod runner;

pub use client::ClientFleet;
pub use metrics::{aggregate, Report, RunData, StageLatency};
pub use report::{cs_fmt, f2, f3, scale, Scale, Table};
pub use runner::{run_experiment, ExperimentConfig};
