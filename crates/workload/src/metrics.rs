//! Cross-replica metric aggregation.
//!
//! The paper's metrics (§6.2) are *client-observed*: throughput counts
//! transactions whose containing block was globally confirmed, latency is
//! the delay until `f + 1` replicas respond, and the causal strength CS
//! (§6.4) penalises pairs ordered against their generation/commitment
//! history. All three need the per-block confirmation times of *every*
//! replica, so aggregation happens here, after the run.

use ladon_core::{ConfirmRecord, NodeMetrics};
use ladon_obs::{MetricsRegistry, MetricsSnapshot, SnapshotInto};
use ladon_types::{Digest, TimeNs};
use std::collections::{BTreeMap, HashMap};

/// Timestamp comparison tolerance for the causal-strength metric.
///
/// The paper's CS is computed from generation and f+1-commit timestamps
/// recorded on NTP-synchronized AWS machines (§6.1); orderings tighter
/// than the sync error and log granularity are invisible there. Our
/// simulator has a perfect global clock and would otherwise flag
/// sub-RTT races — e.g. two instances' epoch-final `maxRank(e)` blocks
/// (whose ranks tie by construction, Algorithm 2 line 6) racing within
/// milliseconds — that no testbed measurement could observe.
pub const CS_CLOCK_TOLERANCE: TimeNs = TimeNs::from_millis(100);

/// Aggregated results of one experiment run.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Throughput in kilo-transactions per second over the measurement
    /// window (transactions confirmed at `f + 1` replicas).
    pub throughput_ktps: f64,
    /// Mean end-to-end latency in seconds (submission → f+1 confirmation).
    pub mean_latency_s: f64,
    /// Transactions confirmed (at f+1 replicas) inside the window.
    pub committed_txs: u64,
    /// Inter-block causal strength `e^(−N/n)` (§6.4), over every non-nil
    /// block as the paper's prose defines it.
    pub causal_strength: f64,
    /// Causal strength restricted to transaction-carrying blocks — the
    /// front-running exposure of §4.3 (an empty block cannot front-run or
    /// be front-run). Differs from [`Self::causal_strength`] only through
    /// empty straggler blocks, chiefly their epoch-boundary `maxRank(e)`
    /// cap blocks whose ranks tie by construction.
    pub causal_strength_tx: f64,
    /// Mean per-replica bandwidth (send + receive) in MB/s.
    pub bandwidth_mbs: f64,
    /// CPU proxy as a percentage of one core (Table 1 analog; the paper's
    /// machines have 8 vCPUs = 800% ceiling).
    pub cpu_pct: f64,
    /// Throughput timeline `(seconds, ktps)` sampled per interval (Fig. 8).
    pub timeline: Vec<(f64, f64)>,
    /// View-change start times in seconds (Fig. 8 annotations).
    pub view_change_times: Vec<f64>,
    /// New-view installation times in seconds.
    pub new_view_times: Vec<f64>,
    /// Epoch advance times in seconds.
    pub epoch_times: Vec<f64>,
    /// Total messages sent by replicas during the window.
    pub msgs_total: u64,
    /// Total bytes sent by replicas during the window.
    pub bytes_total: u64,
    /// Blocks globally confirmed at the reference replica.
    pub confirmed_blocks: u64,
    /// Blocks still waiting at the reference replica when the run ended.
    pub waiting_blocks: usize,
    /// Mean number of transactions per non-nil confirmed block.
    pub mean_batch_fill: f64,
    /// Transactions executed by the reference replica's state machine.
    pub executed_txs: u64,
    /// Executed-transaction throughput at the reference replica, over the
    /// whole run (ktps).
    pub executed_ktps: f64,
    /// Epoch checkpoints at which at least two replicas reported a state
    /// root (the comparable population).
    pub state_checkpoints: u64,
    /// Fraction of those checkpoints where *every* reporting replica's
    /// root was identical (1.0 = perfect cross-replica state agreement).
    pub state_root_agreement: f64,
    /// Total root conflicts observed by any replica's pacemaker (a quorum
    /// signing a root that contradicts local execution; always 0 for
    /// honest deterministic replicas).
    pub root_conflicts: u64,
    /// Peer snapshots installed across all replicas (execution
    /// fast-forward during state transfer).
    pub snapshot_installs: u64,
    /// Confirmed `sn`s fast-forwarded over by snapshot installs, summed
    /// across replicas: the prefix for which the installing replicas hold
    /// no `ConfirmRecord`s (agreement checks join on `sn` for exactly
    /// this reason). Nonzero whenever `snapshot_installs` is.
    pub skipped_sns: u64,
    /// Snapshot heads served to lagging peers, summed across replicas
    /// (serve-side view of the installs above; one per snapshot-bearing
    /// sync response, however many chunk rounds a transfer takes).
    pub snapshots_served: u64,
    /// Per-lane snapshot chunks shipped in sync responses, summed across
    /// replicas. Under delta sync this scales with *changed* lanes, not
    /// state size.
    pub snapshot_chunks_served: u64,
    /// Wire bytes behind `snapshot_chunks_served`, summed.
    pub snapshot_bytes_served: u64,
    /// Snapshot lanes requesters reconstructed from local state instead
    /// of the wire (advertised lane roots matched the head), summed.
    pub snapshot_chunks_reused: u64,
    /// Snapshot-store files that failed to read/decode/verify at store
    /// scans, summed across replicas. Previously swallowed; must be 0
    /// unless a fault test corrupts the store on purpose.
    pub snapshot_decode_failures: u64,
    /// Failed durable WAL writes (segment appends, compaction rotations,
    /// manifest publishes) summed across replicas. Must be 0 in every
    /// healthy run: nonzero means some replica acknowledged blocks a
    /// crash could have lost.
    pub wal_write_failures: u64,
    /// WAL fsync barriers issued, summed across replicas (deterministic
    /// backend counters). Under group commit this tracks confirmed-queue
    /// drains × touched lane groups, not confirmed blocks — the whole
    /// point of batching the durability barrier.
    pub wal_fsyncs: u64,
    /// WAL segment bytes written (appends + compaction rewrites), summed
    /// across replicas.
    pub wal_bytes_written: u64,
    /// Topological waves the reference replica's dependency-DAG
    /// executor ran (deterministic; worker-count invariant).
    pub exec_waves: u64,
    /// Cross-lane dependency edges the reference replica's scheduler
    /// ordered — the read-your-writes dependencies the old two-phase
    /// credit pass deferred.
    pub exec_cross_lane_edges: u64,
    /// Mean ops per wave at the reference replica (`executed_txs /
    /// exec_waves`) — the executor's mean exploitable parallelism.
    pub mean_ops_per_wave: f64,
    /// Records dropped from torn WAL tails at recovery, summed across
    /// replicas (genuinely acknowledged loss — the fault matrix asserts
    /// on this at Report level).
    pub records_torn: u64,
    /// Never-acknowledged records missing from cleanly-ended segments at
    /// recovery, summed across replicas.
    pub records_unacked_lost: u64,
    /// Scanned segments whose stream ended cleanly at a batch trailer,
    /// summed across replicas.
    pub segments_clean_end: u64,
    /// WAL-tail records re-executed at recovery, summed across replicas.
    pub records_replayed: u64,
    /// Certificate verifications skipped via the per-instance
    /// verified-cert cache over the measurement window (filled by the
    /// runner from [`ladon_crypto::CryptoCounters`]) — the PR 5
    /// cert-cache win, visible in run output.
    pub qc_verify_hits: u64,
    /// Signature verifications actually performed over the window
    /// (plain + aggregate), from the same counters.
    pub sig_verifies: u64,
    /// Messages dropped by the network model over the window, per
    /// sending actor (filled by the runner from `NetStats`).
    pub net_dropped: Vec<u64>,
    /// Sum of [`Self::net_dropped`].
    pub net_dropped_total: u64,
    /// Per-block lifecycle stage latencies at the reference replica:
    /// one summary per adjacent stage transition (`staged_to_flushed` is
    /// the cross-drain fsync-barrier wait, `flushed_to_applied` the DAG
    /// execution stage). Sim-time derived, so deterministic.
    pub stage_latencies: Vec<StageLatency>,
    /// Wall-clock nanoseconds replicas spent inside WAL flush barriers,
    /// summed (real elapsed time — the `wall_` obs convention, excluded
    /// from determinism comparisons).
    pub wall_wal_flush_ns: u64,
    /// Wall-clock nanoseconds replicas spent executing staged ops
    /// (dependency-DAG apply), summed.
    pub wall_exec_ns: u64,
    /// Flush barriers taken across replicas (denominator for
    /// per-barrier wall-clock means).
    pub flush_barriers: u64,
    /// Flush barriers whose durable step failed, summed across replicas
    /// — the alarm PR 7 un-swallowed: `flush_staged`/`submit_staged`
    /// used to discard the barrier outcome, so a failed fsync still
    /// reported its range as durable. Must be 0 in every healthy run;
    /// nonzero means ranges were applied whose durability storage never
    /// confirmed (deterministic, unlike the wall-clock barrier timers).
    pub wal_flush_failures: u64,
    /// Barriers submitted while the previous barrier was still in
    /// flight, summed across replicas — genuine write/execute overlap
    /// windows under pipelined durability. Deterministic: inline
    /// (simulation) and writer-thread (File) modes count identically.
    pub wal_pipelined_submits: u64,
    /// Times replicas entered `Degraded` durability mode (consecutive
    /// failed flush barriers crossed the degrade threshold), summed
    /// across replicas. Must be 0 in every healthy run.
    pub degraded_entries: u64,
    /// Durability retry attempts fired while degraded (`T_RETRY`
    /// expiries, successful or not), summed across replicas.
    pub degraded_retries: u64,
    /// Stale stash chunk files pruned at checkpoints, summed across
    /// replicas.
    pub snapshot_chunks_pruned: u64,
    /// State-transfer probes whose responder never answered before the
    /// next probe window, summed across replicas.
    pub sync_responder_timeouts: u64,
    /// Responders quarantined for repeatedly unverifiable sync payloads,
    /// summed across replicas (quarantine events). Must be 0 without a
    /// Byzantine responder in the run.
    pub sync_responders_quarantined: u64,
    /// Sync-response chunks that failed verification, summed across
    /// replicas.
    pub sync_chunks_rejected: u64,
    /// The unified metrics snapshot: every replica's counters merged
    /// through the order-invariant registry, plus run-level network and
    /// crypto counters (filled by the runner). `to_json()` is the one
    /// exposition path; `deterministic_json()` must be byte-identical
    /// across same-seed runs.
    pub metrics: MetricsSnapshot,
}

/// Summary of one lifecycle stage transition's latency distribution.
#[derive(Clone, Debug, Default)]
pub struct StageLatency {
    /// Transition name, e.g. `"staged_to_flushed"`.
    pub transition: String,
    /// Transitions observed.
    pub count: u64,
    /// Mean latency in milliseconds.
    pub mean_ms: f64,
    /// Median (log2-bucket resolution) in milliseconds.
    pub p50_ms: f64,
    /// 99th percentile (log2-bucket resolution) in milliseconds.
    pub p99_ms: f64,
}

/// Inputs to aggregation.
pub struct RunData {
    /// Per-replica metrics (index = replica id).
    pub nodes: Vec<NodeMetrics>,
    /// Fault threshold `f`.
    pub f: usize,
    /// Measurement window start.
    pub window_start: TimeNs,
    /// Measurement window end.
    pub window_end: TimeNs,
    /// Replica whose confirmed log is the reference (first honest,
    /// non-crashed replica).
    pub reference: usize,
    /// Waiting blocks at the reference replica at run end.
    pub waiting_blocks: usize,
}

/// The `(f+1)`-th smallest time in `times`, if that many exist.
fn f1_time(times: &mut [TimeNs], f: usize) -> Option<TimeNs> {
    if times.len() <= f {
        return None;
    }
    times.sort_unstable();
    Some(times[f])
}

/// Aggregates run data into a [`Report`].
pub fn aggregate(data: &RunData) -> Report {
    let f = data.f;
    let window = data.window_end.saturating_sub(data.window_start);
    let window_s = window.as_secs_f64().max(1e-9);

    // Commit times at f+1 replicas, per block (instance, round).
    let mut commit_times: HashMap<(u32, u64), Vec<TimeNs>> = HashMap::new();
    for node in &data.nodes {
        for c in &node.commits {
            commit_times
                .entry((c.instance, c.round))
                .or_default()
                .push(c.time);
        }
    }
    let commit_f1: HashMap<(u32, u64), TimeNs> = commit_times
        .into_iter()
        .filter_map(|(k, mut v)| f1_time(&mut v, f).map(|t| (k, t)))
        .collect();

    // Confirmation times at f+1 replicas, per block.
    let mut confirm_times: HashMap<(u32, u64), Vec<TimeNs>> = HashMap::new();
    for node in &data.nodes {
        for c in &node.confirms {
            confirm_times
                .entry((c.instance, c.round))
                .or_default()
                .push(c.time);
        }
    }
    let confirm_f1: HashMap<(u32, u64), TimeNs> = confirm_times
        .into_iter()
        .filter_map(|(k, mut v)| f1_time(&mut v, f).map(|t| (k, t)))
        .collect();

    // Reference log (sn order).
    let reference = &data.nodes[data.reference];
    let mut ref_log: Vec<&ConfirmRecord> = reference.confirms.iter().collect();
    ref_log.sort_by_key(|c| c.sn);

    // Throughput + latency over blocks whose f+1 confirmation lands in
    // the window.
    let mut txs: u64 = 0;
    let mut latency_weighted: f64 = 0.0;
    let mut batch_blocks = 0u64;
    for c in ref_log.iter().filter(|c| !c.is_nil && c.tx_count > 0) {
        let Some(&t) = confirm_f1.get(&(c.instance, c.round)) else {
            continue;
        };
        if t < data.window_start || t >= data.window_end {
            continue;
        }
        txs += c.tx_count as u64;
        batch_blocks += 1;
        let mean_arrival = (c.arrival_sum_ns / c.tx_count as u128) as u64;
        let lat = t.saturating_sub(TimeNs(mean_arrival)).as_secs_f64();
        latency_weighted += lat * c.tx_count as f64;
    }
    let throughput_ktps = txs as f64 / window_s / 1e3;
    let mean_latency_s = if txs > 0 {
        latency_weighted / txs as f64
    } else {
        0.0
    };

    // Causal strength over the whole reference log (§6.4): a violation is
    // a pair i < j (by sn) where block i was generated after block j was
    // committed by f+1 replicas. Empty blocks count (the paper's §6.1
    // stragglers propose empty blocks, and its ISS numbers only make sense
    // if those count as front-runners); only protocol-internal nil fills
    // are excluded. `CS_CLOCK_TOLERANCE` models the paper's measurement
    // floor: generation and f+1-commit timestamps come from NTP-synced
    // machines, so orderings inside the sync/log granularity are not
    // observable on their testbed, while our simulator's perfect clock
    // would count every sub-RTT race.
    let cs_over = |include_empty: bool| -> f64 {
        let cs_blocks: Vec<(TimeNs, Option<TimeNs>)> = ref_log
            .iter()
            .filter(|c| !c.is_nil && (include_empty || c.tx_count > 0))
            .map(|c| {
                (
                    c.proposed_at,
                    commit_f1.get(&(c.instance, c.round)).copied(),
                )
            })
            .collect();
        let nblocks = cs_blocks.len();
        let mut violations: u64 = 0;
        for i in 0..nblocks {
            let gen_i = cs_blocks[i].0;
            for (_, commit_j) in cs_blocks.iter().skip(i + 1) {
                if let Some(cj) = commit_j {
                    if gen_i > *cj + CS_CLOCK_TOLERANCE {
                        violations += 1;
                    }
                }
            }
        }
        if nblocks == 0 {
            1.0
        } else {
            (-(violations as f64) / nblocks as f64).exp()
        }
    };
    let causal_strength = cs_over(true);
    let causal_strength_tx = cs_over(false);

    // Cross-replica state-root agreement, per checkpointed epoch. Crashed
    // or lagging replicas simply report fewer epochs; agreement is judged
    // over whoever reported.
    let mut roots_by_epoch: BTreeMap<u64, Vec<Digest>> = BTreeMap::new();
    for node in &data.nodes {
        for &(_, epoch, root) in &node.state_roots {
            roots_by_epoch.entry(epoch).or_default().push(root);
        }
    }
    let mut state_checkpoints = 0u64;
    let mut agreeing = 0u64;
    for roots in roots_by_epoch.values() {
        if roots.len() < 2 {
            continue;
        }
        state_checkpoints += 1;
        if roots.windows(2).all(|w| w[0] == w[1]) {
            agreeing += 1;
        }
    }
    let state_root_agreement = if state_checkpoints > 0 {
        agreeing as f64 / state_checkpoints as f64
    } else {
        1.0
    };
    let root_conflicts = data.nodes.iter().map(|n| n.root_conflicts).sum();
    let snapshot_installs = data.nodes.iter().map(|n| n.snapshot_installs).sum();
    let skipped_sns = data.nodes.iter().map(|n| n.skipped_sns).sum();
    let snapshots_served = data.nodes.iter().map(|n| n.snapshots_served).sum();
    let snapshot_chunks_served = data.nodes.iter().map(|n| n.snapshot_chunks_served).sum();
    let snapshot_bytes_served = data.nodes.iter().map(|n| n.snapshot_bytes_served).sum();
    let snapshot_chunks_reused = data.nodes.iter().map(|n| n.snapshot_chunks_reused).sum();
    let snapshot_decode_failures = data.nodes.iter().map(|n| n.snapshot_decode_failures).sum();
    let wal_write_failures = data.nodes.iter().map(|n| n.wal_write_failures).sum();
    let wal_fsyncs = data.nodes.iter().map(|n| n.wal_fsyncs).sum();
    let wal_bytes_written = data.nodes.iter().map(|n| n.wal_bytes_written).sum();
    let records_torn = data.nodes.iter().map(|n| n.records_torn).sum();
    let records_unacked_lost = data.nodes.iter().map(|n| n.records_unacked_lost).sum();
    let segments_clean_end = data.nodes.iter().map(|n| n.segments_clean_end).sum();
    let records_replayed = data.nodes.iter().map(|n| n.records_replayed).sum();
    let wall_wal_flush_ns = data.nodes.iter().map(|n| n.wall_wal_flush_ns).sum();
    let wall_exec_ns = data.nodes.iter().map(|n| n.wall_exec_ns).sum();
    let flush_barriers = data.nodes.iter().map(|n| n.flush_barriers).sum();
    let wal_flush_failures = data.nodes.iter().map(|n| n.wal_flush_failures).sum();
    let wal_pipelined_submits = data.nodes.iter().map(|n| n.wal_pipelined_submits).sum();
    let degraded_entries = data.nodes.iter().map(|n| n.degraded_entries).sum();
    let degraded_retries = data.nodes.iter().map(|n| n.degraded_retries).sum();
    let snapshot_chunks_pruned = data.nodes.iter().map(|n| n.snapshot_chunks_pruned).sum();
    let sync_responder_timeouts = data.nodes.iter().map(|n| n.sync_responder_timeouts).sum();
    let sync_responders_quarantined = data
        .nodes
        .iter()
        .map(|n| n.sync_responders_quarantined)
        .sum();
    let sync_chunks_rejected = data.nodes.iter().map(|n| n.sync_chunks_rejected).sum();

    // Reference-replica lifecycle stage latencies (sim-time ns →
    // milliseconds). Log2-bucketed, so p50/p99 carry bucket resolution.
    let stage_latencies: Vec<StageLatency> = reference
        .trace
        .stage_latencies()
        .into_iter()
        .map(|(transition, h)| StageLatency {
            transition,
            count: h.count(),
            mean_ms: h.mean() / 1e6,
            p50_ms: h.quantile(0.50) as f64 / 1e6,
            p99_ms: h.quantile(0.99) as f64 / 1e6,
        })
        .collect();

    // The unified snapshot: merge every replica's registry. The merge is
    // commutative and associative (counters add, gauges max, histograms
    // add bucket-wise), so replica order cannot perturb the result.
    let mut registry = MetricsRegistry::new();
    for node in &data.nodes {
        node.snapshot_into(&mut registry);
    }
    let metrics = registry.snapshot();

    // Timeline: per-sample ktps at the reference replica (Fig. 8).
    let mut timeline = Vec::new();
    for w in reference.samples.windows(2) {
        let (t0, v0) = w[0];
        let (t1, v1) = w[1];
        let dt = (t1 - t0).as_secs_f64().max(1e-9);
        timeline.push((t1.as_secs_f64(), (v1 - v0) as f64 / dt / 1e3));
    }

    Report {
        throughput_ktps,
        mean_latency_s,
        committed_txs: txs,
        causal_strength,
        causal_strength_tx,
        bandwidth_mbs: 0.0, // filled by the runner from NetStats
        cpu_pct: 0.0,       // filled by the runner from CryptoCounters
        timeline,
        view_change_times: reference
            .view_changes
            .iter()
            .map(|&(t, _, _)| t.as_secs_f64())
            .collect(),
        new_view_times: reference
            .new_views
            .iter()
            .map(|&(t, _, _)| t.as_secs_f64())
            .collect(),
        epoch_times: reference
            .epochs
            .iter()
            .map(|&(t, _)| t.as_secs_f64())
            .collect(),
        msgs_total: 0,
        bytes_total: 0,
        confirmed_blocks: reference.confirms.len() as u64,
        waiting_blocks: data.waiting_blocks,
        mean_batch_fill: if batch_blocks > 0 {
            txs as f64 / batch_blocks as f64
        } else {
            0.0
        },
        executed_txs: reference.executed_txs,
        executed_ktps: reference.executed_txs as f64
            / data.window_end.as_secs_f64().max(1e-9)
            / 1e3,
        exec_waves: reference.exec_waves,
        exec_cross_lane_edges: reference.exec_cross_lane_edges,
        mean_ops_per_wave: if reference.exec_waves > 0 {
            reference.executed_txs as f64 / reference.exec_waves as f64
        } else {
            0.0
        },
        state_checkpoints,
        state_root_agreement,
        root_conflicts,
        snapshot_installs,
        skipped_sns,
        snapshots_served,
        snapshot_chunks_served,
        snapshot_bytes_served,
        snapshot_chunks_reused,
        snapshot_decode_failures,
        wal_write_failures,
        wal_fsyncs,
        wal_bytes_written,
        records_torn,
        records_unacked_lost,
        segments_clean_end,
        records_replayed,
        qc_verify_hits: 0,       // filled by the runner from CryptoCounters
        sig_verifies: 0,         // filled by the runner from CryptoCounters
        net_dropped: Vec::new(), // filled by the runner from NetStats
        net_dropped_total: 0,
        stage_latencies,
        wall_wal_flush_ns,
        wall_exec_ns,
        flush_barriers,
        wal_flush_failures,
        wal_pipelined_submits,
        degraded_entries,
        degraded_retries,
        snapshot_chunks_pruned,
        sync_responder_timeouts,
        sync_responders_quarantined,
        sync_chunks_rejected,
        metrics,
    }
}

/// Convenience: build per-node metrics containers for tests.
pub fn empty_nodes(n: usize) -> Vec<NodeMetrics> {
    (0..n).map(|_| NodeMetrics::default()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ladon_core::CommitRecord;

    fn commit(instance: u32, round: u64, time_ms: u64) -> CommitRecord {
        CommitRecord {
            instance,
            round,
            rank: round,
            time: TimeNs::from_millis(time_ms),
        }
    }

    fn confirm(sn: u64, instance: u32, round: u64, time_ms: u64, gen_ms: u64) -> ConfirmRecord {
        ConfirmRecord {
            sn,
            instance,
            round,
            rank: round,
            tx_count: 100,
            arrival_sum_ns: 100 * TimeNs::from_millis(gen_ms).0 as u128,
            proposed_at: TimeNs::from_millis(gen_ms),
            time: TimeNs::from_millis(time_ms),
            is_nil: false,
        }
    }

    fn run_data(nodes: Vec<NodeMetrics>) -> RunData {
        RunData {
            nodes,
            f: 1,
            window_start: TimeNs::ZERO,
            window_end: TimeNs::from_secs(10),
            reference: 0,
            waiting_blocks: 0,
        }
    }

    #[test]
    fn f1_confirmation_gates_throughput() {
        // Block (0,1) confirmed by nodes 0 and 1 (f+1 = 2 of 4): counted.
        // Block (0,2) confirmed only by node 0: not counted.
        let mut nodes = empty_nodes(4);
        for node in nodes.iter_mut().take(2) {
            node.commits.push(commit(0, 1, 100));
            node.confirms.push(confirm(0, 0, 1, 200, 50));
        }
        nodes[0].commits.push(commit(0, 2, 300));
        nodes[0].confirms.push(confirm(1, 0, 2, 400, 250));
        let rep = aggregate(&run_data(nodes));
        assert_eq!(rep.committed_txs, 100);
        // 100 txs / 10 s = 0.01 ktps.
        assert!((rep.throughput_ktps - 0.01).abs() < 1e-9);
        // Latency: confirm at f+1 (=200 ms, both nodes) − arrival (50 ms).
        assert!((rep.mean_latency_s - 0.150).abs() < 1e-9);
    }

    #[test]
    fn causal_violation_detected() {
        // sn0 generated at 900 ms; sn1 committed by f+1 at 100 ms: the
        // pair (0, 1) violates causality.
        let mut nodes = empty_nodes(4);
        for node in nodes.iter_mut().take(2) {
            node.commits.push(commit(0, 1, 850));
            node.commits.push(commit(1, 1, 100));
            node.confirms.push(confirm(0, 0, 1, 900, 900));
            node.confirms.push(confirm(1, 1, 1, 950, 50));
        }
        let rep = aggregate(&run_data(nodes));
        // One violation over two blocks: CS = e^(−1/2).
        assert!((rep.causal_strength - (-0.5f64).exp()).abs() < 1e-9);
    }

    #[test]
    fn sub_tolerance_races_are_not_violations() {
        // Same shape as `causal_violation_detected`, but the generation
        // follows the f+1 commit by only 50 ms — inside the NTP-floor
        // tolerance a testbed measurement could not observe.
        let mut nodes = empty_nodes(4);
        for node in nodes.iter_mut().take(2) {
            node.commits.push(commit(0, 1, 850));
            node.commits.push(commit(1, 1, 860));
            node.confirms.push(confirm(0, 0, 1, 920, 910));
            node.confirms.push(confirm(1, 1, 1, 950, 50));
        }
        let rep = aggregate(&run_data(nodes));
        assert_eq!(rep.causal_strength, 1.0);
    }

    #[test]
    fn empty_blocks_count_in_cs_but_not_in_cs_tx() {
        // The front-runner (sn 0) carries no transactions — a straggler's
        // empty block. It violates the all-blocks CS (the paper's ISS
        // numbers need this) but not the tx-only variant (§4.3: nothing
        // to front-run with).
        let mut nodes = empty_nodes(4);
        for node in nodes.iter_mut().take(2) {
            node.commits.push(commit(0, 1, 850));
            node.commits.push(commit(1, 1, 100));
            let mut empty_front = confirm(0, 0, 1, 900, 900);
            empty_front.tx_count = 0;
            node.confirms.push(empty_front);
            node.confirms.push(confirm(1, 1, 1, 950, 50));
        }
        let rep = aggregate(&run_data(nodes));
        assert!((rep.causal_strength - (-0.5f64).exp()).abs() < 1e-9);
        assert_eq!(rep.causal_strength_tx, 1.0);
    }

    #[test]
    fn perfect_causality_gives_cs_one() {
        let mut nodes = empty_nodes(4);
        for node in nodes.iter_mut().take(2) {
            for b in 0..5u64 {
                node.commits.push(commit(0, b + 1, 100 * (b + 1)));
                node.confirms
                    .push(confirm(b, 0, b + 1, 100 * (b + 1) + 50, 100 * (b + 1) - 60));
            }
        }
        let rep = aggregate(&run_data(nodes));
        assert_eq!(rep.causal_strength, 1.0);
        assert_eq!(rep.committed_txs, 500);
    }

    #[test]
    fn skipped_sns_summed_across_replicas() {
        let mut nodes = empty_nodes(4);
        nodes[1].skipped_sns = 10;
        nodes[1].snapshot_installs = 1;
        nodes[3].skipped_sns = 5;
        nodes[3].snapshot_installs = 2;
        let rep = aggregate(&run_data(nodes));
        assert_eq!(rep.skipped_sns, 15);
        assert_eq!(rep.snapshot_installs, 3);
    }

    #[test]
    fn snapshot_serve_counters_summed_across_replicas() {
        let mut nodes = empty_nodes(4);
        nodes[0].snapshots_served = 2;
        nodes[0].snapshot_chunks_served = 9;
        nodes[0].snapshot_bytes_served = 900;
        nodes[2].snapshots_served = 1;
        nodes[2].snapshot_chunks_served = 3;
        nodes[2].snapshot_bytes_served = 300;
        nodes[3].snapshot_chunks_reused = 61;
        nodes[1].snapshot_decode_failures = 1;
        let rep = aggregate(&run_data(nodes));
        assert_eq!(rep.snapshots_served, 3);
        assert_eq!(rep.snapshot_chunks_served, 12);
        assert_eq!(rep.snapshot_bytes_served, 1200);
        assert_eq!(rep.snapshot_chunks_reused, 61);
        assert_eq!(rep.snapshot_decode_failures, 1);
        // And the merged registry carries the same sums.
        let reg = rep.metrics.registry();
        assert_eq!(reg.counter_value("sync.snapshot_chunks_served"), 12);
        assert_eq!(reg.counter_value("sync.snapshot_bytes_served"), 1200);
        assert_eq!(reg.counter_value("sync.snapshot_chunks_reused"), 61);
        assert_eq!(reg.counter_value("node.snapshots_served"), 3);
        assert_eq!(reg.counter_value("node.snapshot_decode_failures"), 1);
    }

    #[test]
    fn wal_write_failures_summed_across_replicas() {
        let mut nodes = empty_nodes(4);
        nodes[0].wal_write_failures = 2;
        nodes[2].wal_write_failures = 1;
        let rep = aggregate(&run_data(nodes));
        assert_eq!(rep.wal_write_failures, 3);
        // And a healthy fleet reports zero.
        let rep = aggregate(&run_data(empty_nodes(4)));
        assert_eq!(rep.wal_write_failures, 0);
    }

    #[test]
    fn wal_flush_failures_summed_across_replicas() {
        let mut nodes = empty_nodes(4);
        nodes[1].wal_flush_failures = 1;
        nodes[3].wal_flush_failures = 2;
        nodes[0].wal_pipelined_submits = 7;
        nodes[2].wal_pipelined_submits = 5;
        let rep = aggregate(&run_data(nodes));
        assert_eq!(rep.wal_flush_failures, 3);
        assert_eq!(rep.wal_pipelined_submits, 12);
        // And a healthy fleet reports zero failed barriers.
        let rep = aggregate(&run_data(empty_nodes(4)));
        assert_eq!(rep.wal_flush_failures, 0);
    }

    #[test]
    fn fault_counters_summed_across_replicas() {
        let mut nodes = empty_nodes(4);
        nodes[1].degraded_entries = 2;
        nodes[1].degraded_retries = 5;
        nodes[2].snapshot_chunks_pruned = 3;
        nodes[0].sync_responder_timeouts = 4;
        nodes[3].sync_responders_quarantined = 1;
        nodes[3].sync_chunks_rejected = 9;
        let rep = aggregate(&run_data(nodes));
        assert_eq!(rep.degraded_entries, 2);
        assert_eq!(rep.degraded_retries, 5);
        assert_eq!(rep.snapshot_chunks_pruned, 3);
        assert_eq!(rep.sync_responder_timeouts, 4);
        assert_eq!(rep.sync_responders_quarantined, 1);
        assert_eq!(rep.sync_chunks_rejected, 9);
        // The unified registry carries the same counters.
        let reg = rep.metrics.registry();
        assert_eq!(reg.counter_value("node.degraded_entries"), 2);
        assert_eq!(reg.counter_value("node.degraded_retries"), 5);
        assert_eq!(reg.counter_value("node.snapshot_chunks_pruned"), 3);
        assert_eq!(reg.counter_value("sync.responder_timeouts"), 4);
        assert_eq!(reg.counter_value("sync.responders_quarantined"), 1);
        assert_eq!(reg.counter_value("sync.chunks_rejected"), 9);
        // And a healthy fleet reports zero everywhere.
        let rep = aggregate(&run_data(empty_nodes(4)));
        assert_eq!(rep.degraded_entries, 0);
        assert_eq!(rep.sync_responders_quarantined, 0);
    }

    #[test]
    fn exec_scheduler_counters_surface_from_reference() {
        let mut nodes = empty_nodes(4);
        nodes[0].executed_txs = 900;
        nodes[0].exec_waves = 30;
        nodes[0].exec_cross_lane_edges = 17;
        nodes[2].exec_waves = 99; // non-reference replicas do not leak in
        let rep = aggregate(&run_data(nodes));
        assert_eq!(rep.exec_waves, 30);
        assert_eq!(rep.exec_cross_lane_edges, 17);
        assert!((rep.mean_ops_per_wave - 30.0).abs() < 1e-9);
        // No waves executed → no division blow-up.
        let rep = aggregate(&run_data(empty_nodes(4)));
        assert_eq!(rep.mean_ops_per_wave, 0.0);
    }

    #[test]
    fn wal_io_counters_summed_across_replicas() {
        let mut nodes = empty_nodes(4);
        nodes[0].wal_fsyncs = 7;
        nodes[0].wal_bytes_written = 1000;
        nodes[3].wal_fsyncs = 5;
        nodes[3].wal_bytes_written = 400;
        let rep = aggregate(&run_data(nodes));
        assert_eq!(rep.wal_fsyncs, 12);
        assert_eq!(rep.wal_bytes_written, 1400);
    }

    #[test]
    fn window_excludes_warmup_blocks() {
        let mut nodes = empty_nodes(4);
        for node in nodes.iter_mut().take(2) {
            node.commits.push(commit(0, 1, 100));
            node.confirms.push(confirm(0, 0, 1, 200, 50));
        }
        let mut data = run_data(nodes);
        data.window_start = TimeNs::from_secs(1); // confirm at 0.2 s < 1 s
        let rep = aggregate(&data);
        assert_eq!(rep.committed_txs, 0);
    }

    #[test]
    fn timeline_diffs_samples() {
        let mut nodes = empty_nodes(1);
        nodes[0].samples = vec![
            (TimeNs::from_secs(1), 0),
            (TimeNs::from_secs(2), 10_000),
            (TimeNs::from_secs(3), 30_000),
        ];
        let mut data = run_data(nodes);
        data.f = 0;
        let rep = aggregate(&data);
        assert_eq!(rep.timeline.len(), 2);
        assert!((rep.timeline[0].1 - 10.0).abs() < 1e-9);
        assert!((rep.timeline[1].1 - 20.0).abs() < 1e-9);
    }
}
