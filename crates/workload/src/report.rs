//! Table formatting for the benchmark harness.
//!
//! The paper's figures are line plots; the harness prints the same series
//! as aligned ASCII tables with a `paper:` annotation column where the
//! paper reports a comparable number, so `bench_output.txt` reads as a
//! paper-vs-measured record.

use std::fmt::Write as _;

/// A printable table.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            let mut parts = Vec::new();
            for (i, c) in cells.iter().enumerate() {
                parts.push(format!("{:<width$}", c, width = widths[i]));
            }
            let _ = writeln!(out, "| {} |", parts.join(" | "));
        };
        line(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + widths.len() * 3 + 1;
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a causal strength in the paper's style (scientific when tiny).
pub fn cs_fmt(v: f64) -> String {
    if v >= 0.001 {
        format!("{v:.3}")
    } else {
        format!("{v:.2e}")
    }
}

/// Reads the benchmark scale from `LADON_SCALE` (`quick` default, `full`
/// for paper-scale sweeps). Quick keeps `cargo bench` under a few minutes.
pub fn scale() -> Scale {
    match std::env::var("LADON_SCALE").as_deref() {
        Ok("full") => Scale::Full,
        Ok("medium") => Scale::Medium,
        _ => Scale::Quick,
    }
}

/// Benchmark scale presets.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Small replica counts, short windows (CI-friendly).
    Quick,
    /// Mid-size sweep.
    Medium,
    /// The paper's full 8–128 replica sweep.
    Full,
}

impl Scale {
    /// Replica counts for scalability sweeps (paper: 8–128).
    pub fn replica_counts(self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![8, 16],
            Scale::Medium => vec![8, 16, 32],
            Scale::Full => vec![8, 16, 32, 64, 128],
        }
    }

    /// Measurement window seconds.
    ///
    /// Straggler experiments need windows spanning several straggler
    /// proposal intervals (k = 10 → one block every ~10 s at m = n = 16),
    /// otherwise Ladon's confirmation bar sits in its startup transient.
    pub fn duration_s(self) -> f64 {
        match self {
            Scale::Quick => 24.0,
            Scale::Medium => 30.0,
            Scale::Full => 45.0,
        }
    }

    /// Warmup seconds (must cover every instance's first proposal,
    /// including the slowest straggler's).
    pub fn warmup_s(self) -> f64 {
        match self {
            Scale::Quick => 12.0,
            Scale::Medium => 12.0,
            Scale::Full => 15.0,
        }
    }

    /// Measurement window for straggler runs. Pre-determined orderers
    /// confirm in bursts, one per straggler proposal (§2.1); the window
    /// must span several bursts or measured throughput collapses to zero
    /// instead of the paper's ≈ 1/k fraction. The straggler interval grows
    /// with `n` (fixed total block rate), so the window scales with it.
    pub fn straggler_duration_s(self, straggler_interval_s: f64) -> f64 {
        self.duration_s().max(3.0 * straggler_interval_s)
    }

    /// Warmup for straggler runs: Ladon's confirmation bar needs every
    /// instance's *first* block (the bar stays at its initial value until
    /// all instances have tips), so the warmup must cover at least one
    /// straggler proposal interval.
    pub fn straggler_warmup_s(self, straggler_interval_s: f64) -> f64 {
        self.warmup_s().max(1.5 * straggler_interval_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "long-header", "c"]);
        t.row(vec!["1".into(), "2".into(), "3".into()]);
        t.row(vec!["100".into(), "x".into(), "yy".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("| a   | long-header | c  |"));
        assert!(s.contains("| 100 | x           | yy |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn cs_format_switches_to_scientific() {
        assert_eq!(cs_fmt(1.0), "1.000");
        assert_eq!(cs_fmt(0.154), "0.154");
        assert!(cs_fmt(1.04e-5).contains('e'));
    }

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::Quick.replica_counts().len() < Scale::Full.replica_counts().len());
        assert!(Scale::Quick.duration_s() < Scale::Full.duration_s());
        assert!(
            Scale::Quick.warmup_s() >= 12.0,
            "warmup must cover straggler first blocks"
        );
    }
}
