//! The experiment runner: builds a full simulated deployment from a
//! configuration, runs it, and aggregates the paper's metrics.

use crate::client::ClientFleet;
use crate::metrics::{aggregate, Report, RunData};
use ladon_core::{Behavior, MultiBftNode, NodeConfig, NodeMsg};
use ladon_crypto::{CryptoCounters, KeyRegistry};
use ladon_sim::{Engine, NicNetwork, Topology};
use ladon_types::{NetEnv, ProtocolKind, ReplicaId, SystemConfig, TimeNs};

/// Configuration of one experiment run.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Protocol under test.
    pub protocol: ProtocolKind,
    /// Replica count `n` (instances `m = n` per the paper).
    pub n: usize,
    /// Network environment.
    pub env: NetEnv,
    /// Measurement window length in seconds (after warmup).
    pub duration_s: f64,
    /// Warmup seconds excluded from measurement.
    pub warmup_s: f64,
    /// Number of honest stragglers (replica ids 1, 2, …).
    pub stragglers: usize,
    /// Straggler slowdown factor `k` (proposal rate = normal / k).
    pub straggler_k: f64,
    /// Make stragglers Byzantine rank-minimizers (§6.3.1).
    pub byzantine_stragglers: bool,
    /// Ablation: run all honest leaders without the proposal-time rank
    /// refresh (Algorithm 2 taken literally).
    pub stale_rank_reports: bool,
    /// Crash `(replica, at_seconds)` (Fig. 8).
    pub crash: Option<(usize, f64)>,
    /// Offered load as a fraction of nominal capacity
    /// (`total_block_rate × batch_size`).
    pub load_factor: f64,
    /// Sample the confirmed-tx timeline at this interval (seconds).
    pub sample_interval_s: Option<f64>,
    /// Deterministic seed.
    pub seed: u64,
    /// Override the epoch length `l(e)` (paper default 64).
    pub epoch_length: Option<u64>,
    /// Override the view-change timeout in seconds (paper Fig. 8: 10 s).
    pub view_timeout_s: Option<f64>,
    /// Override the batch size (paper default 4096).
    pub batch_size: Option<u32>,
}

impl ExperimentConfig {
    /// Paper-default configuration for a protocol at scale `n`.
    pub fn new(protocol: ProtocolKind, n: usize, env: NetEnv) -> Self {
        Self {
            protocol,
            n,
            env,
            duration_s: 10.0,
            warmup_s: 5.0,
            stragglers: 0,
            straggler_k: 10.0,
            byzantine_stragglers: false,
            stale_rank_reports: false,
            crash: None,
            load_factor: 1.0,
            sample_interval_s: None,
            seed: 42,
            epoch_length: None,
            view_timeout_s: None,
            batch_size: None,
        }
    }

    /// Sets the measurement window.
    pub fn duration_secs(mut self, s: f64) -> Self {
        self.duration_s = s;
        self
    }

    /// Sets the warmup.
    pub fn warmup_secs(mut self, s: f64) -> Self {
        self.warmup_s = s;
        self
    }

    /// Adds `count` honest stragglers with factor `k`.
    pub fn with_stragglers(mut self, count: usize, k: f64) -> Self {
        self.stragglers = count;
        self.straggler_k = k;
        self
    }

    /// Makes the stragglers Byzantine rank minimizers.
    pub fn byzantine(mut self) -> Self {
        self.byzantine_stragglers = true;
        self
    }

    /// Ablation: disable the proposal-time rank refresh on all leaders.
    pub fn stale_ranks(mut self) -> Self {
        self.stale_rank_reports = true;
        self
    }

    /// Crashes `replica` at `at_s` seconds.
    pub fn with_crash(mut self, replica: usize, at_s: f64) -> Self {
        self.crash = Some((replica, at_s));
        self
    }

    /// Sets the offered-load factor.
    pub fn load(mut self, factor: f64) -> Self {
        self.load_factor = factor;
        self
    }

    /// Enables timeline sampling.
    pub fn sampled(mut self, every_s: f64) -> Self {
        self.sample_interval_s = Some(every_s);
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the epoch length.
    pub fn with_epoch_length(mut self, l: u64) -> Self {
        self.epoch_length = Some(l);
        self
    }

    /// Overrides the view-change timeout.
    pub fn with_view_timeout(mut self, s: f64) -> Self {
        self.view_timeout_s = Some(s);
        self
    }

    /// Overrides the batch size.
    pub fn with_batch_size(mut self, b: u32) -> Self {
        self.batch_size = Some(b);
        self
    }

    /// Applies scale-preset measurement windows, stretching both warmup
    /// and duration when the run has stragglers (call *after*
    /// [`Self::with_stragglers`]). See [`crate::Scale::straggler_duration_s`].
    pub fn scaled_windows(mut self, sc: crate::Scale) -> Self {
        if self.stragglers > 0 {
            let iv = self.straggler_interval_s();
            self.duration_s = sc.straggler_duration_s(iv);
            self.warmup_s = sc.straggler_warmup_s(iv);
        } else {
            self.duration_s = sc.duration_s();
            self.warmup_s = sc.warmup_s();
        }
        self
    }

    /// The interval between a straggling leader's proposals:
    /// `k × m / total_block_rate` (§6.1 fixes straggler proposal rates to
    /// `1/k` of normal leaders').
    pub fn straggler_interval_s(&self) -> f64 {
        let sys = SystemConfig::paper_default(self.n, self.env);
        self.straggler_k * sys.proposal_interval().as_secs_f64()
    }

    /// The system configuration this experiment implies.
    pub fn system(&self) -> SystemConfig {
        let mut sys = SystemConfig::paper_default(self.n, self.env);
        if let Some(l) = self.epoch_length {
            sys.epoch_length = l;
            // Keep the snapshot-serving policy inside the (shrunken) log
            // retention window.
            sys.snapshot_min_lag = sys.snapshot_min_lag.min(l);
        }
        if let Some(t) = self.view_timeout_s {
            sys.view_change_timeout = TimeNs::from_secs_f64(t);
        } else if self.stragglers > 0 {
            // §6.1: stragglers delay proposals "without triggering
            // timeouts" — they stay under every detection mechanism (view
            // timeout, ISS/Mir quiet-leader detector, RCC lag removal).
            // Raise each threshold comfortably above the straggler
            // interval, or every slow round degenerates into view changes
            // / removals and the run stops representing the paper's
            // setting (whose RCC and ISS both lose ≈ 90 % to a straggler).
            let iv = self.straggler_interval_s();
            let floor = 2.5 * iv;
            if sys.view_change_timeout.as_secs_f64() < floor {
                sys.view_change_timeout = TimeNs::from_secs_f64(floor);
            }
            if sys.quiet_leader_timeout.as_secs_f64() < floor {
                sys.quiet_leader_timeout = TimeNs::from_secs_f64(floor);
            }
            // Lag accrues at just under one block per straggler interval
            // for the whole run; size the threshold past any finite window.
            sys.rcc_lag_threshold = u64::MAX;
        }
        if let Some(b) = self.batch_size {
            sys.batch_size = b;
        }
        sys
    }
}

/// Runs one experiment and aggregates its report.
pub fn run_experiment(cfg: &ExperimentConfig) -> Report {
    let sys = cfg.system();
    sys.validate().expect("invalid experiment configuration");
    let n = sys.n;
    let f = sys.f();

    let registry = KeyRegistry::generate(n, sys.opt_keys, cfg.seed ^ 0x5eed);
    let topo = Topology::paper(cfg.env, n + 1); // +1 for the client fleet
    let net = NicNetwork::new(topo);
    let mut engine: Engine<NodeMsg> = Engine::new(net, cfg.seed);

    let warmup = TimeNs::from_secs_f64(cfg.warmup_s);
    let end = warmup + TimeNs::from_secs_f64(cfg.duration_s);

    // Stragglers occupy replica ids 1..=count (replica 0 stays honest so
    // it can serve as DQBFT's ordering leader and the reference log).
    let straggler_ids: Vec<usize> = (1..=cfg.stragglers.min(n - 1)).collect();

    for r in 0..n {
        let behavior = Behavior {
            straggler_k: straggler_ids.contains(&r).then_some(cfg.straggler_k),
            rank_minimize: cfg.byzantine_stragglers && straggler_ids.contains(&r),
            stale_rank_reports: cfg.stale_rank_reports,
            crash_at: cfg
                .crash
                .and_then(|(cr, at)| (cr == r).then(|| TimeNs::from_secs_f64(at))),
        };
        let node = MultiBftNode::new(NodeConfig {
            sys: sys.clone(),
            protocol: cfg.protocol,
            me: ReplicaId(r as u32),
            registry: registry.clone(),
            behavior,
            sample_interval: cfg.sample_interval_s.map(TimeNs::from_secs_f64),
        });
        engine.add_actor(Box::new(node));
    }

    // Offered load: nominal capacity × load factor.
    let tx_rate = sys.total_block_rate * sys.batch_size as f64 * cfg.load_factor;
    engine.add_actor(Box::new(ClientFleet::new(
        n,
        sys.m,
        tx_rate,
        sys.tx_bytes,
        end,
    )));

    // Warmup, snapshot, measure, snapshot.
    CryptoCounters::reset();
    engine.run_until(warmup);
    let stats0 = engine.stats().clone();
    let crypto0 = CryptoCounters::snapshot();
    engine.run_until(end + TimeNs::from_millis(1));
    let stats1 = engine.stats().clone().since(&stats0);
    let crypto1 = CryptoCounters::snapshot().since(&crypto0);

    // Reference replica: first honest, non-straggling, non-crashed.
    let crashed = cfg.crash.map(|(r, _)| r);
    let reference = (0..n)
        .find(|r| Some(*r) != crashed && !straggler_ids.contains(r))
        .unwrap_or(0);

    let nodes: Vec<_> = (0..n)
        .map(|r| {
            engine
                .actor_as::<MultiBftNode>(r)
                .expect("replica actor")
                .metrics
                .clone()
        })
        .collect();
    let waiting = engine
        .actor_as::<MultiBftNode>(reference)
        .map(|x| x.waiting_count())
        .unwrap_or(0);

    let mut report = aggregate(&RunData {
        nodes,
        f,
        window_start: warmup,
        window_end: end,
        reference,
        waiting_blocks: waiting,
    });

    let window = end.saturating_sub(warmup);
    report.bandwidth_mbs = stats1.mean_bandwidth_mbs(n, window);
    // CPU proxy: per-replica crypto cost over the window, as % of a core.
    report.cpu_pct = crypto1.cpu_seconds_proxy() / n as f64 / window.as_secs_f64() * 100.0;
    report.msgs_total = stats1.msgs_sent.iter().take(n).sum();
    report.bytes_total = stats1.bytes_sent.iter().take(n).sum();
    // Cert-cache and verification totals over the window (thread-local
    // counters, so they cover the whole simulated fleet).
    report.qc_verify_hits = crypto1.qc_verify_hits;
    report.sig_verifies = crypto1.sig_verifies();
    // Per-actor drop counts (replicas + the client-fleet actor).
    report.net_dropped = stats1.dropped.clone();
    report.net_dropped_total = stats1.dropped_total();
    // Fold the run-level network and crypto counters into the unified
    // snapshot next to the per-replica merge from `aggregate`.
    let mut run_registry = ladon_obs::MetricsRegistry::new();
    ladon_obs::SnapshotInto::snapshot_into(&stats1, &mut run_registry);
    ladon_obs::SnapshotInto::snapshot_into(&crypto1, &mut run_registry);
    report.metrics.merge(&run_registry.snapshot());
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end smoke test: a small Ladon-PBFT cluster confirms client
    /// transactions under the full stack.
    #[test]
    fn ladon_pbft_smoke() {
        let cfg = ExperimentConfig::new(ProtocolKind::LadonPbft, 4, NetEnv::Lan)
            .duration_secs(3.0)
            .warmup_secs(2.0)
            .with_seed(7);
        let report = run_experiment(&cfg);
        assert!(
            report.committed_txs > 0,
            "no transactions confirmed: {report:?}"
        );
        assert!(report.mean_latency_s > 0.0);
        assert!(report.causal_strength > 0.99);
        // Observability surface: crypto, per-actor network accounting and
        // lifecycle stage latencies all reach the report.
        assert!(
            report.sig_verifies > 0,
            "a confirming cluster must verify signatures: {report:?}"
        );
        assert_eq!(
            report.net_dropped.iter().sum::<u64>(),
            report.net_dropped_total
        );
        let confirmed = report
            .stage_latencies
            .iter()
            .find(|s| s.transition == "proposed_to_confirmed")
            .expect("lifecycle trace must cover proposed -> confirmed");
        assert!(confirmed.count > 0 && confirmed.mean_ms > 0.0);
        assert!(
            report.flush_barriers > 0,
            "group-commit flushes must be counted: {report:?}"
        );
    }

    #[test]
    fn iss_pbft_smoke() {
        let cfg = ExperimentConfig::new(ProtocolKind::IssPbft, 4, NetEnv::Lan)
            .duration_secs(3.0)
            .warmup_secs(2.0)
            .with_seed(7);
        let report = run_experiment(&cfg);
        assert!(report.committed_txs > 0, "{report:?}");
    }

    #[test]
    fn determinism_same_seed_same_report() {
        let cfg = ExperimentConfig::new(ProtocolKind::LadonPbft, 4, NetEnv::Lan)
            .duration_secs(2.0)
            .warmup_secs(1.0)
            .with_seed(11);
        let a = run_experiment(&cfg);
        let b = run_experiment(&cfg);
        assert_eq!(a.committed_txs, b.committed_txs);
        assert_eq!(a.confirmed_blocks, b.confirmed_blocks);
        assert!((a.mean_latency_s - b.mean_latency_s).abs() < 1e-12);
    }
}
