//! Crash-fault recovery (Fig. 8): a leader crashes at t = 11 s; the PBFT
//! view change (10 s timeout) replaces it and throughput recovers.
//!
//! ```sh
//! cargo run --release --example crash_recovery
//! ```

use ladon::types::{NetEnv, ProtocolKind};
use ladon::workload::{run_experiment, ExperimentConfig};

fn main() {
    println!("Ladon-PBFT, n = 16, WAN; replica 3 crashes at t = 11 s; timeout 10 s\n");
    let r = run_experiment(
        &ExperimentConfig::new(ProtocolKind::LadonPbft, 16, NetEnv::Wan)
            .duration_secs(40.0)
            .warmup_secs(0.0)
            .with_crash(3, 11.0)
            .with_view_timeout(10.0)
            .sampled(1.0),
    );

    println!("t (s) | throughput (ktps)");
    println!("------+------------------");
    for &(t, ktps) in &r.timeline {
        let bar = "#".repeat((ktps.min(80.0) / 2.0) as usize);
        println!("{t:>5.0} | {ktps:>7.2} {bar}");
    }
    println!(
        "\nview changes started: {:?}",
        r.view_change_times.iter().map(|s| format!("{s:.1}s")).collect::<Vec<_>>()
    );
    println!(
        "new views installed : {:?}",
        r.new_view_times.iter().map(|s| format!("{s:.1}s")).collect::<Vec<_>>()
    );
    println!(
        "epoch advances      : {:?}",
        r.epoch_times.iter().map(|s| format!("{s:.1}s")).collect::<Vec<_>>()
    );
    println!(
        "\nExpected shape (paper Fig. 8): throughput dips to ~0 after the crash,\n\
         the view change completes ~10 s later, and throughput recovers; later\n\
         brief dips are epoch changes."
    );
}
