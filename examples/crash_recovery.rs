//! Crash-fault recovery, in two acts.
//!
//! **Act 1 (paper Fig. 8):** a leader crashes at t = 11 s; the PBFT view
//! change (10 s timeout) replaces it and throughput recovers.
//!
//! **Act 2 (durable state):** a replica runs with a *disk-backed*
//! execution pipeline (commit WAL + epoch snapshots under a temp dir),
//! crashes mid-run, and a new process recovers its state machine from
//! `snapshot + WAL replay` — byte-identical root — then rejoins the
//! cluster via state transfer and ends in agreement.
//!
//! ```sh
//! cargo run --release --example crash_recovery
//! ```

use ladon::core::{Behavior, MultiBftNode, NodeConfig, NodeMsg};
use ladon::crypto::KeyRegistry;
use ladon::sim::{Engine, NicNetwork, Topology};
use ladon::state::{ExecutionPipeline, DEFAULT_KEYSPACE};
use ladon::types::{NetEnv, ProtocolKind, ReplicaId, SystemConfig, TimeNs};
use ladon::workload::{run_experiment, ClientFleet, ExperimentConfig};

fn fig8_timeline() {
    println!("Ladon-PBFT, n = 16, WAN; replica 3 crashes at t = 11 s; timeout 10 s\n");
    let r = run_experiment(
        &ExperimentConfig::new(ProtocolKind::LadonPbft, 16, NetEnv::Wan)
            .duration_secs(40.0)
            .warmup_secs(0.0)
            .with_crash(3, 11.0)
            .with_view_timeout(10.0)
            .sampled(1.0),
    );

    println!("t (s) | throughput (ktps)");
    println!("------+------------------");
    for &(t, ktps) in &r.timeline {
        let bar = "#".repeat((ktps.min(80.0) / 2.0) as usize);
        println!("{t:>5.0} | {ktps:>7.2} {bar}");
    }
    println!(
        "\nview changes started: {:?}",
        r.view_change_times
            .iter()
            .map(|s| format!("{s:.1}s"))
            .collect::<Vec<_>>()
    );
    println!(
        "new views installed : {:?}",
        r.new_view_times
            .iter()
            .map(|s| format!("{s:.1}s"))
            .collect::<Vec<_>>()
    );
    println!(
        "epoch advances      : {:?}",
        r.epoch_times
            .iter()
            .map(|s| format!("{s:.1}s"))
            .collect::<Vec<_>>()
    );
    println!(
        "\nExpected shape (paper Fig. 8): throughput dips to ~0 after the crash,\n\
         the view change completes ~10 s later, and throughput recovers; later\n\
         brief dips are epoch changes."
    );
}

fn restart_from_snapshot() {
    println!("\n=== Act 2: restart from durable snapshot + WAL ===\n");
    let n = 4;
    let mut sys = SystemConfig::paper_default(n, NetEnv::Lan);
    sys.epoch_length = 16; // frequent checkpoints for the demo
    let registry = KeyRegistry::generate(n, sys.opt_keys, 0x5eed);
    let dir = std::env::temp_dir().join(format!("ladon-crash-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut engine: Engine<NodeMsg> =
        Engine::new(NicNetwork::new(Topology::paper(NetEnv::Lan, n + 1)), 7);
    for r in 0..n {
        let cfg = NodeConfig {
            sys: sys.clone(),
            protocol: ProtocolKind::LadonPbft,
            me: ReplicaId(r as u32),
            registry: registry.clone(),
            behavior: Behavior {
                crash_at: (r == 3).then(|| TimeNs::from_secs(6)),
                ..Default::default()
            },
            sample_interval: None,
        };
        // Replica 3 journals to disk; the others stay in memory.
        let node = if r == 3 {
            let exec = ExecutionPipeline::recover(&dir, DEFAULT_KEYSPACE)
                .expect("create durable pipeline");
            MultiBftNode::with_execution(cfg, exec)
        } else {
            MultiBftNode::new(cfg)
        };
        engine.add_actor(Box::new(node));
    }
    let tx_rate = sys.total_block_rate * sys.batch_size as f64;
    engine.add_actor(Box::new(ClientFleet::new(
        n,
        sys.m,
        tx_rate,
        sys.tx_bytes,
        TimeNs::from_secs(30),
    )));

    // Run past the crash (t = 6 s): replica 3's process is gone, but its
    // WAL and snapshots survive on disk.
    engine.run_until(TimeNs::from_secs(10));
    let dead = engine.actor_as::<MultiBftNode>(3).unwrap();
    let pre_root = dead.exec.state_root();
    let pre_applied = dead.exec.applied();
    println!(
        "crashed at t=6s with applied={pre_applied}, root={}, wal_tail={} records",
        pre_root.short_hex(),
        dead.exec.wal_len(),
    );

    // "New process": recover purely from the on-disk artifacts.
    let recovered = ExecutionPipeline::recover(&dir, DEFAULT_KEYSPACE).expect("recover from disk");
    assert_eq!(recovered.applied(), pre_applied, "recovery lost blocks");
    assert_eq!(recovered.state_root(), pre_root, "recovery changed state");
    println!(
        "recovered from disk:  applied={}, root={}  (exact match)",
        recovered.applied(),
        recovered.state_root().short_hex(),
    );

    let node = MultiBftNode::with_execution(
        NodeConfig {
            sys: sys.clone(),
            protocol: ProtocolKind::LadonPbft,
            me: ReplicaId(3),
            registry,
            behavior: Behavior::default(),
            sample_interval: None,
        },
        recovered,
    );
    engine.restart_actor(3, Box::new(node));
    engine.run_until(TimeNs::from_secs(45));

    let r3 = engine.actor_as::<MultiBftNode>(3).unwrap();
    let r0 = engine.actor_as::<MultiBftNode>(0).unwrap();
    println!(
        "\nafter rejoin at t=45s: replica3 epoch={} applied={} root={}",
        r3.epoch(),
        r3.exec.applied(),
        r3.exec.state_root().short_hex(),
    );
    println!(
        "      healthy peer 0: epoch={} applied={} root={}",
        r0.epoch(),
        r0.exec.applied(),
        r0.exec.state_root().short_hex(),
    );
    println!(
        "sync: {} requests, {} blocks installed, {} snapshot installs",
        r3.metrics.sync_requests, r3.metrics.sync_installed, r3.metrics.snapshot_installs,
    );
    assert_eq!(
        r3.epoch(),
        r0.epoch(),
        "replica 3 must rejoin the epoch schedule"
    );
    assert_eq!(
        r3.exec.state_root(),
        r0.exec.state_root(),
        "replica 3 must converge to the cluster's state root"
    );
    println!("\nOK: restarted replica recovered from snapshot + WAL and re-converged.");
    let _ = std::fs::remove_dir_all(&dir);
}

fn main() {
    fig8_timeline();
    restart_from_snapshot();
}
