//! Crash-fault recovery, in two acts.
//!
//! **Act 1 (paper Fig. 8):** a leader crashes at t = 11 s; the PBFT view
//! change (10 s timeout) replaces it and throughput recovers.
//!
//! **Act 2 (durable state):** a replica runs with a *disk-backed*
//! execution pipeline (commit WAL + epoch snapshots under a temp dir),
//! crashes mid-run, and a new process recovers its state machine from
//! `snapshot + WAL replay` — byte-identical root — then rejoins the
//! cluster via state transfer and ends in agreement.
//!
//! ```sh
//! cargo run --release --example crash_recovery
//! ```

use ladon::core::{Behavior, MultiBftNode, NodeConfig, NodeMsg};
use ladon::crypto::KeyRegistry;
use ladon::sim::{Engine, NicNetwork, Topology};
use ladon::state::{ExecutionPipeline, DEFAULT_KEYSPACE};
use ladon::types::{NetEnv, ProtocolKind, ReplicaId, SystemConfig, TimeNs};
use ladon::workload::{run_experiment, ClientFleet, ExperimentConfig};

fn fig8_timeline() {
    println!("Ladon-PBFT, n = 16, WAN; replica 3 crashes at t = 11 s; timeout 10 s\n");
    let r = run_experiment(
        &ExperimentConfig::new(ProtocolKind::LadonPbft, 16, NetEnv::Wan)
            .duration_secs(40.0)
            .warmup_secs(0.0)
            .with_crash(3, 11.0)
            .with_view_timeout(10.0)
            .sampled(1.0),
    );

    println!("t (s) | throughput (ktps)");
    println!("------+------------------");
    for &(t, ktps) in &r.timeline {
        let bar = "#".repeat((ktps.min(80.0) / 2.0) as usize);
        println!("{t:>5.0} | {ktps:>7.2} {bar}");
    }
    println!(
        "\nview changes started: {:?}",
        r.view_change_times
            .iter()
            .map(|s| format!("{s:.1}s"))
            .collect::<Vec<_>>()
    );
    println!(
        "new views installed : {:?}",
        r.new_view_times
            .iter()
            .map(|s| format!("{s:.1}s"))
            .collect::<Vec<_>>()
    );
    println!(
        "epoch advances      : {:?}",
        r.epoch_times
            .iter()
            .map(|s| format!("{s:.1}s"))
            .collect::<Vec<_>>()
    );
    println!(
        "\nExpected shape (paper Fig. 8): throughput dips to ~0 after the crash,\n\
         the view change completes ~10 s later, and throughput recovers; later\n\
         brief dips are epoch changes."
    );
}

fn restart_from_snapshot() {
    println!("\n=== Act 2: restart from durable snapshot + WAL ===\n");
    let n = 4;
    let mut sys = SystemConfig::paper_default(n, NetEnv::Lan);
    sys.epoch_length = 16; // frequent checkpoints for the demo
    let registry = KeyRegistry::generate(n, sys.opt_keys, 0x5eed);
    let dir = std::env::temp_dir().join(format!("ladon-crash-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut engine: Engine<NodeMsg> =
        Engine::new(NicNetwork::new(Topology::paper(NetEnv::Lan, n + 1)), 7);
    for r in 0..n {
        let cfg = NodeConfig {
            sys: sys.clone(),
            protocol: ProtocolKind::LadonPbft,
            me: ReplicaId(r as u32),
            registry: registry.clone(),
            behavior: Behavior {
                crash_at: (r == 3).then(|| TimeNs::from_secs(6)),
                ..Default::default()
            },
            sample_interval: None,
        };
        // Replica 3 journals to disk; the others stay in memory.
        let node = if r == 3 {
            let exec = ExecutionPipeline::recover(&dir, DEFAULT_KEYSPACE)
                .expect("create durable pipeline");
            MultiBftNode::with_execution(cfg, exec)
        } else {
            MultiBftNode::new(cfg)
        };
        engine.add_actor(Box::new(node));
    }
    let tx_rate = sys.total_block_rate * sys.batch_size as f64;
    engine.add_actor(Box::new(ClientFleet::new(
        n,
        sys.m,
        tx_rate,
        sys.tx_bytes,
        TimeNs::from_secs(30),
    )));

    // Run past the crash (t = 6 s): replica 3's process is gone, but its
    // WAL and snapshots survive on disk.
    engine.run_until(TimeNs::from_secs(10));
    let dead = engine.actor_as::<MultiBftNode>(3).unwrap();
    let pre_root = dead.exec.state_root();
    let pre_applied = dead.exec.applied();
    println!(
        "crashed at t=6s with applied={pre_applied}, root={}, wal_tail={} records",
        pre_root.short_hex(),
        dead.exec.wal_len(),
    );

    // "New process": recover purely from the on-disk artifacts.
    let recovered = ExecutionPipeline::recover(&dir, DEFAULT_KEYSPACE).expect("recover from disk");
    assert_eq!(recovered.applied(), pre_applied, "recovery lost blocks");
    assert_eq!(recovered.state_root(), pre_root, "recovery changed state");
    println!(
        "recovered from disk:  applied={}, root={}  (exact match)",
        recovered.applied(),
        recovered.state_root().short_hex(),
    );
    // The segmented WAL's partial-replay breakdown: the snapshot decides
    // a per-lane covered frontier, covered segments are skipped without
    // being read, and only the dirty tail re-executes.
    print_recovery_breakdown(recovered.recovery_stats());

    let node = MultiBftNode::with_execution(
        NodeConfig {
            sys: sys.clone(),
            protocol: ProtocolKind::LadonPbft,
            me: ReplicaId(3),
            registry,
            behavior: Behavior::default(),
            sample_interval: None,
        },
        recovered,
    );
    engine.restart_actor(3, Box::new(node));
    engine.run_until(TimeNs::from_secs(45));

    let r3 = engine.actor_as::<MultiBftNode>(3).unwrap();
    let r0 = engine.actor_as::<MultiBftNode>(0).unwrap();
    println!(
        "\nafter rejoin at t=45s: replica3 epoch={} applied={} root={}",
        r3.epoch(),
        r3.exec.applied(),
        r3.exec.state_root().short_hex(),
    );
    println!(
        "      healthy peer 0: epoch={} applied={} root={}",
        r0.epoch(),
        r0.exec.applied(),
        r0.exec.state_root().short_hex(),
    );
    println!(
        "sync: {} requests, {} blocks installed, {} snapshot installs",
        r3.metrics.sync_requests, r3.metrics.sync_installed, r3.metrics.snapshot_installs,
    );
    assert_eq!(
        r3.epoch(),
        r0.epoch(),
        "replica 3 must rejoin the epoch schedule"
    );
    assert_eq!(
        r3.exec.state_root(),
        r0.exec.state_root(),
        "replica 3 must converge to the cluster's state root"
    );
    println!("\nOK: restarted replica recovered from snapshot + WAL and re-converged.");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Act 2b: the partial-replay path in isolation, with numbers the
/// cluster timing cannot checkpoint away. A disk-backed pipeline
/// executes 96 blocks and "crashes" in the worst spot: the epoch-64
/// snapshot reached disk but the WAL compaction behind it never ran
/// (the exact window the atomic segment rotation makes survivable), so
/// the log still holds all 96 records. Recovery installs the snapshot,
/// skips every covered segment *without reading it*, and replays
/// exactly the 32-block tail.
fn partial_replay_breakdown() {
    use ladon::state::{SnapshotStore, WalOptions};
    use ladon::types::Block;

    println!("\n=== Act 2b: partial replay breakdown (segments skipped vs scanned) ===\n");
    let dir = std::env::temp_dir().join(format!("ladon-partial-replay-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let wal_opts = WalOptions {
        lane_groups: 8,
        segment_records: 8,
    };
    let block = |sn: u64| Block::synthetic(sn, sn * 64, 64);
    let pre_root = {
        // The durable log: all 96 records, no compaction.
        let mut p = ExecutionPipeline::recover_opts(&dir, DEFAULT_KEYSPACE, 4, wal_opts)
            .expect("create durable pipeline");
        for sn in 0..96 {
            p.execute(sn, &block(sn));
        }
        // The epoch-64 snapshot, captured by a clean re-execution and
        // persisted — standing in for a checkpoint whose compaction was
        // killed before it could rotate the old segments out.
        let mut donor = ExecutionPipeline::in_memory(DEFAULT_KEYSPACE);
        for sn in 0..64 {
            donor.execute(sn, &block(sn));
        }
        donor.checkpoint(0, Vec::new());
        let mut store = SnapshotStore::at_dir(&dir).expect("snapshot store");
        assert!(store.put(donor.latest_snapshot().unwrap().clone()));
        println!(
            "crashed mid-compaction at applied=96: snapshot covers 64 blocks, \
             log still holds {} records across {} segments",
            p.wal_len(),
            p.wal_segments().len(),
        );
        p.state_root()
    };
    let recovered = ExecutionPipeline::recover_opts(&dir, DEFAULT_KEYSPACE, 4, wal_opts)
        .expect("recover from disk");
    assert_eq!(recovered.applied(), 96);
    assert_eq!(recovered.state_root(), pre_root, "partial replay diverged");
    let stats = recovered.recovery_stats();
    assert_eq!(
        stats.records_replayed, 32,
        "replay must touch only the tail"
    );
    print_recovery_breakdown(stats);
    println!("\nOK: recovery replayed the 32-block tail only, root byte-identical.");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Prints one recovery's partial-replay accounting (shared by acts 2 and
/// 2b).
fn print_recovery_breakdown(stats: &ladon::state::ReplayStats) {
    println!(
        "recovery breakdown:   {} segments skipped unread, {} scanned; \
         {} records replayed ({} txs), {} already covered",
        stats.segments_skipped,
        stats.segments_scanned,
        stats.records_replayed,
        stats.replayed_txs,
        stats.records_below_floor,
    );
    let busiest = stats
        .records_per_lane
        .iter()
        .enumerate()
        .max_by_key(|&(_, c)| c)
        .map(|(lane, c)| format!("lane {lane}: {c} records"))
        .unwrap_or_default();
    println!(
        "                      replay touched {} of 64 lanes (busiest: {busiest})",
        stats.dirty_lanes(),
    );
}

fn main() {
    fig8_timeline();
    restart_from_snapshot();
    partial_replay_breakdown();
}
