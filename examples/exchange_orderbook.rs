//! Exchange scenario (§1, §4.3): replay the confirmed global log as a toy
//! order book and count the front-running opportunities each ordering
//! policy exposes.
//!
//! A front-running opportunity exists whenever the global log executes a
//! block *before* a block that was already partially committed when the
//! first one was generated: an attacker controlling the later-generated
//! block saw the committed order flow and still got ahead of it (the
//! paper's Fig. 1: block 4 executes before blocks 5–9).
//!
//! ```sh
//! cargo run --release --example exchange_orderbook
//! ```

use ladon::core::{Behavior, MultiBftNode, NodeConfig, NodeMsg};
use ladon::crypto::KeyRegistry;
use ladon::sim::{Engine, NicNetwork, Topology};
use ladon::types::{NetEnv, ProtocolKind, ReplicaId, SystemConfig, TimeNs};
use ladon::workload::ClientFleet;

/// Runs a deployment and returns the reference replica's confirmed log as
/// `(sn, proposed_at, commit_observed_at, tx_count)`.
fn confirmed_log(proto: ProtocolKind) -> Vec<(u64, TimeNs, TimeNs, u32)> {
    let n = 8;
    let sys = SystemConfig::paper_default(n, NetEnv::Wan);
    let registry = KeyRegistry::generate(n, sys.opt_keys, 99);
    let mut engine: Engine<NodeMsg> =
        Engine::new(NicNetwork::new(Topology::paper(NetEnv::Wan, n + 1)), 99);
    for r in 0..n {
        engine.add_actor(Box::new(MultiBftNode::new(NodeConfig {
            sys: sys.clone(),
            protocol: proto,
            me: ReplicaId(r as u32),
            registry: registry.clone(),
            behavior: Behavior {
                straggler_k: (r == 1).then_some(8.0), // one straggling leader
                ..Default::default()
            },
            sample_interval: None,
        })));
    }
    engine.add_actor(Box::new(ClientFleet::new(
        n,
        sys.m,
        sys.total_block_rate * sys.batch_size as f64,
        sys.tx_bytes,
        TimeNs::from_secs(28),
    )));
    engine.run_until(TimeNs::from_secs(30));

    let node = engine.actor_as::<MultiBftNode>(0).expect("replica 0");
    // Commit observation times from replica 0 (a lower bound for the
    // f+1 aggregate; adequate for the demonstration).
    let mut commit_at = std::collections::HashMap::new();
    for c in &node.metrics.commits {
        commit_at.insert((c.instance, c.round), c.time);
    }
    let mut log: Vec<(u64, TimeNs, TimeNs, u32)> = node
        .metrics
        .confirms
        .iter()
        .filter(|c| !c.is_nil)
        .map(|c| {
            (
                c.sn,
                c.proposed_at,
                commit_at
                    .get(&(c.instance, c.round))
                    .copied()
                    .unwrap_or(TimeNs::MAX),
                c.tx_count,
            )
        })
        .collect();
    log.sort_by_key(|&(sn, ..)| sn);
    log
}

/// Counts front-running windows: block i executes before block j although
/// j was committed before i was even generated. `txs_exposed` weights each
/// window by the victim block's transactions (orders that could be
/// front-run).
fn audit(log: &[(u64, TimeNs, TimeNs, u32)]) -> (u64, u64) {
    let mut windows = 0u64;
    let mut txs_exposed = 0u64;
    for i in 0..log.len() {
        let (_, gen_i, _, _) = log[i];
        for &(_, _, commit_j, txs_j) in log.iter().skip(i + 1) {
            if gen_i > commit_j {
                windows += 1;
                txs_exposed += txs_j as u64;
            }
        }
    }
    (windows, txs_exposed)
}

fn main() {
    println!("Toy exchange audit: n = 8, WAN, one straggling leader (k = 8)\n");
    println!(
        "{:<10} {:>8} {:>20} {:>22}",
        "protocol", "blocks", "front-run windows", "victim orders exposed"
    );
    for proto in [ProtocolKind::IssPbft, ProtocolKind::LadonPbft] {
        let log = confirmed_log(proto);
        let (windows, exposed) = audit(&log);
        println!(
            "{:<10} {:>8} {:>20} {:>22}",
            proto.label(),
            log.len(),
            windows,
            exposed
        );
    }
    println!(
        "\nUnder ISS the straggler's slots execute ahead of order flow that was\n\
         committed seconds earlier — every such window lets an attacker place a\n\
         buy order 'in the past'. Ladon's monotonic ranks order blocks by\n\
         generation, so the audit finds no window."
    );
}
