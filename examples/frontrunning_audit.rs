//! Causality audit (§4.3, §6.4): measures the inter-block causal strength
//! of ISS vs Ladon under a straggler and explains the front-running window
//! that pre-determined ordering opens.
//!
//! A front-runner watches partially committed blocks. Under ISS, a
//! straggler's block is *assigned its global position before creation*, so
//! a transaction placed in it executes ahead of transactions that were
//! committed long before it existed — the attacker sees a victim's buy
//! order in a committed block and front-runs it from the straggler's slot.
//! Ladon's monotonic ranks force later-generated blocks after committed
//! ones, closing the window (CS = 1.0).
//!
//! ```sh
//! cargo run --release --example frontrunning_audit
//! ```

use ladon::types::{NetEnv, ProtocolKind};
use ladon::workload::{cs_fmt, run_experiment, ExperimentConfig};

fn main() {
    println!("n = 16, WAN, one straggler at 0.1 blocks/s (k = 10)\n");
    println!(
        "{:<10} {:>16} {:>24}",
        "protocol", "causal strength", "front-running exposure"
    );
    for proto in [
        ProtocolKind::IssPbft,
        ProtocolKind::RccPbft,
        ProtocolKind::MirPbft,
        ProtocolKind::DqbftPbft,
        ProtocolKind::LadonPbft,
    ] {
        let r = run_experiment(
            &ExperimentConfig::new(proto, 16, NetEnv::Wan)
                .duration_secs(10.0)
                .warmup_secs(5.0)
                .with_stragglers(1, 10.0),
        );
        // CS = e^(-N/n): recover the violation count per confirmed block.
        let violations_per_block = -r.causal_strength.ln();
        let exposure = if r.causal_strength >= 0.999 {
            "none (no violation pairs)".to_string()
        } else {
            format!("{violations_per_block:.2} violation pairs/block")
        };
        println!(
            "{:<10} {:>16} {:>24}",
            proto.label(),
            cs_fmt(r.causal_strength),
            exposure
        );
    }

    println!(
        "\nInterpretation: every violation pair is a block ordered *before* a block\n\
         that was already committed when it was generated — exactly the window a\n\
         front-runner needs (paper Fig. 1: block 4 executes before blocks 5-9).\n\
         Ladon's MR-Monotonicity makes the window empty by construction."
    );
}
