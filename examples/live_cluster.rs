//! Live (threaded, wall-clock) cluster: the *same* replica state machines
//! that run under the deterministic simulator, driven by real threads and
//! crossbeam channels for a few wall-clock seconds — with **file-backed**
//! WAL pipelines, so each replica's durability barriers run on its own
//! `ladon-wal-writer` thread (pipelined group commit) while its actor
//! thread keeps staging and executing.
//!
//! ```sh
//! cargo run --release --example live_cluster
//! ```

use ladon::core::{Behavior, MultiBftNode, NodeConfig, NodeMsg};
use ladon::crypto::KeyRegistry;
use ladon::sim::{Actor, LiveRuntime, NicNetwork, Topology};
use ladon::state::{ExecutionPipeline, WalOptions};
use ladon::types::{NetEnv, ProtocolKind, ReplicaId, SystemConfig, TimeNs};
use ladon::workload::ClientFleet;

fn main() {
    let n = 4;
    let mut sys = SystemConfig::paper_default(n, NetEnv::Lan);
    // Tone down the batch pipeline for a short wall-clock demo.
    sys.batch_size = 512;
    // Accumulate a few blocks per durability barrier so the writer
    // thread has real batches to overlap, and bound the unacknowledged
    // window with the time-based flush policy.
    sys.wal_flush_max_records = 4;
    sys.wal_flush_interval_ms = 20;
    let registry = KeyRegistry::generate(n, sys.opt_keys, 7);

    // One WAL directory per replica; file-backed pipelines spawn the
    // per-node writer thread (LiveRuntime/File mode).
    let run_dir = std::env::temp_dir().join(format!("ladon-live-cluster-{}", std::process::id()));
    let mut actors: Vec<Box<dyn Actor<NodeMsg> + Send>> = Vec::new();
    for r in 0..n {
        let wal_dir = run_dir.join(format!("replica-{r}"));
        let exec = ExecutionPipeline::recover_opts(
            &wal_dir,
            sys.exec_keyspace,
            sys.exec_lanes,
            WalOptions {
                lane_groups: sys.wal_lane_groups,
                segment_records: sys.wal_segment_records,
            },
        )
        .expect("open file-backed pipeline");
        actors.push(Box::new(MultiBftNode::with_execution(
            NodeConfig {
                sys: sys.clone(),
                protocol: ProtocolKind::LadonPbft,
                me: ReplicaId(r as u32),
                registry: registry.clone(),
                behavior: Behavior::default(),
                sample_interval: None,
            },
            exec,
        )));
    }
    actors.push(Box::new(ClientFleet::new(
        n,
        sys.m,
        sys.total_block_rate * sys.batch_size as f64,
        sys.tx_bytes,
        TimeNs::from_secs(3),
    )));

    let topo = Topology::paper(NetEnv::Lan, n + 1);
    println!(
        "spawning {n} replica threads (+{n} WAL writer threads) + 1 client thread for 3 s of wall time…"
    );
    let rt = LiveRuntime::spawn(actors, Box::new(NicNetwork::new(topo)), 42);
    std::thread::sleep(std::time::Duration::from_secs(3));
    let stats = rt.stats();
    let finals = rt.shutdown();

    println!("\n=== live run results ===");
    for (r, actor) in finals.iter().enumerate().take(n) {
        let node = actor
            .as_any()
            .downcast_ref::<MultiBftNode>()
            .expect("replica actor");
        println!(
            "replica {r}: partially committed {} blocks, globally confirmed {} blocks, {} txs; \
             {} flush barriers ({} pipelined, {} failed)",
            node.metrics.commits.len(),
            node.metrics.confirms.len(),
            node.metrics.confirmed_txs,
            node.metrics.flush_barriers,
            node.metrics.wal_pipelined_submits,
            node.metrics.wal_flush_failures,
        );
    }
    println!(
        "network: {} messages, {:.1} MB total",
        stats.total_msgs(),
        stats.total_bytes() as f64 / 1e6
    );
    let node0 = finals[0]
        .as_any()
        .downcast_ref::<MultiBftNode>()
        .expect("replica actor");
    assert!(
        node0.metrics.confirmed_txs > 0,
        "the live cluster should confirm transactions"
    );
    assert_eq!(
        node0.metrics.wal_flush_failures, 0,
        "no durability barrier may fail on a healthy disk"
    );
    // Dropping the actors joins each replica's WAL writer thread after
    // draining its in-flight barrier.
    drop(finals);
    let _ = std::fs::remove_dir_all(&run_dir);
    println!("\nok: the same state machines run under real threads and wall-clock time.");
}
