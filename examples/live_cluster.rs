//! Live (threaded, wall-clock) cluster: the *same* replica state machines
//! that run under the deterministic simulator, driven by real threads and
//! crossbeam channels for a few wall-clock seconds.
//!
//! ```sh
//! cargo run --release --example live_cluster
//! ```

use ladon::core::{Behavior, MultiBftNode, NodeConfig, NodeMsg};
use ladon::crypto::KeyRegistry;
use ladon::sim::{Actor, LiveRuntime, NicNetwork, Topology};
use ladon::types::{NetEnv, ProtocolKind, ReplicaId, SystemConfig, TimeNs};
use ladon::workload::ClientFleet;

fn main() {
    let n = 4;
    let mut sys = SystemConfig::paper_default(n, NetEnv::Lan);
    // Tone down the batch pipeline for a short wall-clock demo.
    sys.batch_size = 512;
    let registry = KeyRegistry::generate(n, sys.opt_keys, 7);

    let mut actors: Vec<Box<dyn Actor<NodeMsg> + Send>> = Vec::new();
    for r in 0..n {
        actors.push(Box::new(MultiBftNode::new(NodeConfig {
            sys: sys.clone(),
            protocol: ProtocolKind::LadonPbft,
            me: ReplicaId(r as u32),
            registry: registry.clone(),
            behavior: Behavior::default(),
            sample_interval: None,
        })));
    }
    actors.push(Box::new(ClientFleet::new(
        n,
        sys.m,
        sys.total_block_rate * sys.batch_size as f64,
        sys.tx_bytes,
        TimeNs::from_secs(3),
    )));

    let topo = Topology::paper(NetEnv::Lan, n + 1);
    println!("spawning {n} replica threads + 1 client thread for 3 s of wall time…");
    let rt = LiveRuntime::spawn(actors, Box::new(NicNetwork::new(topo)), 42);
    std::thread::sleep(std::time::Duration::from_secs(3));
    let stats = rt.stats();
    let finals = rt.shutdown();

    println!("\n=== live run results ===");
    for (r, actor) in finals.iter().enumerate().take(n) {
        let node = actor
            .as_any()
            .downcast_ref::<MultiBftNode>()
            .expect("replica actor");
        println!(
            "replica {r}: partially committed {} blocks, globally confirmed {} blocks, {} txs",
            node.metrics.commits.len(),
            node.metrics.confirms.len(),
            node.metrics.confirmed_txs,
        );
    }
    println!(
        "network: {} messages, {:.1} MB total",
        stats.total_msgs(),
        stats.total_bytes() as f64 / 1e6
    );
    let node0 = finals[0]
        .as_any()
        .downcast_ref::<MultiBftNode>()
        .expect("replica actor");
    assert!(
        node0.metrics.confirmed_txs > 0,
        "the live cluster should confirm transactions"
    );
    println!("\nok: the same state machines run under real threads and wall-clock time.");
}
