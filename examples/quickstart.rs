//! Quickstart: run a 4-replica Ladon-PBFT deployment in the deterministic
//! simulator, submit client load, and inspect the global log.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ladon::types::{NetEnv, ProtocolKind};
use ladon::workload::{run_experiment, ExperimentConfig};

fn main() {
    // Paper-default system (m = n, 500 B txs, 4096-tx batches), scaled to
    // a laptop-friendly 4-replica LAN run.
    let cfg = ExperimentConfig::new(ProtocolKind::LadonPbft, 4, NetEnv::Lan)
        .duration_secs(5.0)
        .warmup_secs(2.0)
        .with_seed(2024);

    println!("running Ladon-PBFT, n = 4, LAN, 5 s measurement window…");
    let report = run_experiment(&cfg);

    println!("\n=== results ===");
    println!("throughput     : {:.1} ktps", report.throughput_ktps);
    println!("mean latency   : {:.3} s", report.mean_latency_s);
    println!("confirmed txs  : {}", report.committed_txs);
    println!("global blocks  : {}", report.confirmed_blocks);
    println!(
        "causal strength: {:.3} (1.0 = no front-running window)",
        report.causal_strength
    );
    println!(
        "bandwidth      : {:.1} MB/s per replica",
        report.bandwidth_mbs
    );

    assert!(
        report.committed_txs > 0,
        "the cluster should confirm transactions"
    );
    assert!(report.causal_strength > 0.99, "Ladon preserves causality");
    println!("\nok: the cluster reached consensus with dynamic global ordering.");
}
