//! The paper's headline scenario: one straggling leader in a 16-replica
//! WAN deployment. Pre-determined global ordering (ISS) collapses; Ladon's
//! dynamic ordering keeps confirming.
//!
//! ```sh
//! cargo run --release --example straggler_comparison
//! ```

use ladon::types::{NetEnv, ProtocolKind};
use ladon::workload::{run_experiment, ExperimentConfig};

fn run(proto: ProtocolKind, stragglers: usize) -> ladon::workload::Report {
    run_experiment(
        &ExperimentConfig::new(proto, 16, NetEnv::Wan)
            .duration_secs(10.0)
            .warmup_secs(5.0)
            .with_stragglers(stragglers, 10.0),
    )
}

fn main() {
    println!("n = 16, WAN, straggler k = 10 (proposes at 1/10 the normal rate)\n");
    println!(
        "{:<10} {:>12} {:>14} {:>12} {:>10}",
        "protocol", "stragglers", "tput (ktps)", "latency (s)", "waiting"
    );
    let mut results = Vec::new();
    for proto in [ProtocolKind::IssPbft, ProtocolKind::LadonPbft] {
        for s in [0usize, 1] {
            let r = run(proto, s);
            println!(
                "{:<10} {:>12} {:>14.2} {:>12.3} {:>10}",
                proto.label(),
                s,
                r.throughput_ktps,
                r.mean_latency_s,
                r.waiting_blocks
            );
            results.push((proto, s, r));
        }
    }

    let iss_1 = &results
        .iter()
        .find(|(p, s, _)| *p == ProtocolKind::IssPbft && *s == 1)
        .unwrap()
        .2;
    let ladon_1 = &results
        .iter()
        .find(|(p, s, _)| *p == ProtocolKind::LadonPbft && *s == 1)
        .unwrap()
        .2;
    if iss_1.throughput_ktps > 0.0 {
        println!(
            "\nWith one straggler, Ladon confirms {:.1}x the transactions of ISS \
             (paper reports ~8-9x at larger scales).",
            ladon_1.throughput_ktps / iss_1.throughput_ktps
        );
    }
    println!(
        "ISS leaves {} blocks stuck behind the straggler's holes; Ladon leaves {}.",
        iss_1.waiting_blocks, ladon_1.waiting_blocks
    );
}
