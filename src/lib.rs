//! # Ladon: High-Performance Multi-BFT Consensus via Dynamic Global Ordering
//!
//! A full Rust reproduction of the EuroSys'25 paper. This facade crate
//! re-exports the workspace's public API:
//!
//! - [`types`]: identifiers, blocks, ordering keys, configuration.
//! - [`crypto`]: SHA-256, simulated PKI / aggregate signatures, QCs.
//! - [`sim`]: deterministic discrete-event engine + network models.
//! - [`pbft`]: PBFT consensus instances with Ladon rank piggybacking.
//! - [`hotstuff`]: chained HotStuff instances (Appendix D).
//! - [`core`]: monotonic ranks, global ordering (Algorithm 1), epochs,
//!   rotating buckets, the Multi-BFT node, and baseline orderers
//!   (ISS / Mir / RCC / DQBFT).
//! - [`state`]: the execution layer — deterministic KV state machine,
//!   commit write-ahead log, and epoch-aligned snapshots with
//!   content-addressed state roots (checkpoints attest to state, and
//!   replicas recover from snapshot + WAL replay).
//! - [`workload`]: clients, stragglers, Byzantine behaviors, metrics and
//!   the experiment runner used by the benchmark harness.
//!
//! # Examples
//!
//! ```
//! use ladon::workload::{ExperimentConfig, run_experiment};
//! use ladon::types::{NetEnv, ProtocolKind};
//!
//! let cfg = ExperimentConfig::new(ProtocolKind::LadonPbft, 4, NetEnv::Lan)
//!     .duration_secs(2.0);
//! let report = run_experiment(&cfg);
//! assert!(report.committed_txs > 0);
//! ```

pub use ladon_core as core;
pub use ladon_crypto as crypto;
pub use ladon_hotstuff as hotstuff;
pub use ladon_obs as obs;
pub use ladon_pbft as pbft;
pub use ladon_sim as sim;
pub use ladon_state as state;
pub use ladon_types as types;
pub use ladon_workload as workload;
