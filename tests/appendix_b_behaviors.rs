//! Appendix B: the three leader behaviors around rank selection, driven
//! directly through the PBFT instance state machines.
//!
//! The appendix example: four replicas, ranks known to the leader are
//! {3, 2, 2, 2}. An honest leader proposes rank 4; a detected-Byzantine
//! leader is replaced and the new honest leader proposes 4; an undetected
//! minimizer discards the 3 and proposes rank 3 — which is still not below
//! any committed block's rank (§4.4).

use ladon::pbft::testkit::{test_batch, Cluster};
use ladon::pbft::{RankMode, RankStrategy};
use ladon::types::{Rank, Round, View};

/// Drives the cluster until the replicas' `curRank`s diverge like the
/// appendix setup: replica 0 knows rank r+1 (it leads and commits first in
/// simulation terms), everyone has at least rank r certified.
fn warm_cluster(strategy: fn(usize) -> RankStrategy) -> Cluster {
    let mut c = Cluster::with_strategy(4, RankMode::Plain, 1_000, strategy);
    for i in 0..3 {
        c.propose_and_run(0, test_batch(i * 10, 4));
    }
    c
}

#[test]
fn case_1_honest_leader_takes_max_plus_one() {
    let mut c = warm_cluster(|_| RankStrategy::Honest);
    let before = c.assert_agreement().last().unwrap().rank();
    c.propose_and_run(0, test_batch(100, 4));
    let after = c.assert_agreement().last().unwrap().rank();
    // Honest: max(collected) + 1 — strictly one above the previous block
    // in a single-instance cluster.
    assert_eq!(after, Rank(before.0 + 1));
}

#[test]
fn case_2_detected_byzantine_leader_is_replaced() {
    let mut c = warm_cluster(|_| RankStrategy::Honest);
    let committed_before = c.assert_agreement().len();
    // Leader 0 is "detected": it goes silent and the round timer fires.
    c.crashed[0] = true;
    let next_round = Round(committed_before as u64 + 1);
    c.fire_round_timers(next_round, View(0));
    // Replica 1 now leads view 1 and proposes with a fresh rank.
    assert!(c.nodes[1].is_leader());
    c.propose_and_run(1, test_batch(200, 4));
    let blocks = c.assert_agreement();
    assert_eq!(blocks.len(), committed_before + 1);
    let last = blocks.last().unwrap();
    let prev = &blocks[blocks.len() - 2];
    // The replacement leader's rank continues the monotone sequence.
    assert!(last.rank() > prev.rank());
}

#[test]
fn case_3_minimizer_stays_at_or_above_committed_ranks() {
    // Replica 0 minimizes: it discards high ranks and uses the lowest
    // 2f+1. Its proposals may lag the honest max by the discarded margin
    // but can never undercut a partially committed rank.
    let mut c = warm_cluster(|r| {
        if r == 0 {
            RankStrategy::MinimizeLowest
        } else {
            RankStrategy::Honest
        }
    });
    let mut last = c.assert_agreement().last().unwrap().rank();
    for i in 0..4 {
        c.propose_and_run(0, test_batch(300 + i * 10, 4));
        let now = c.assert_agreement().last().unwrap().rank();
        assert!(
            now > last,
            "minimized rank {now} must still exceed committed rank {last}"
        );
        last = now;
    }
}

#[test]
fn minimizer_proposes_lower_ranks_than_honest_when_spread_exists() {
    // Make the rank spread visible: seed replica curRanks unevenly by
    // running a side cluster, then compare strategies on identical report
    // sets. We approximate by checking the strategy choice logic through
    // committed ranks: with all-equal reports the two coincide, which the
    // previous tests cover; here we just assert the Byzantine cluster
    // still reaches agreement (§6.3.1's finding: mild impact only).
    let mut c = Cluster::with_strategy(4, RankMode::Plain, 1_000, |r| {
        if r == 0 {
            RankStrategy::MinimizeLowest
        } else {
            RankStrategy::Honest
        }
    });
    for i in 0..6 {
        c.propose_and_run(0, test_batch(i * 10, 4));
    }
    let blocks = c.assert_agreement();
    assert_eq!(blocks.len(), 6);
    for w in blocks.windows(2) {
        assert!(w[1].rank() > w[0].rank());
    }
}
