//! Causality (§4.3, §6.4) and fault handling (Fig. 8) end to end.

mod common;

use common::{cluster, ClusterOpts};
use ladon::types::{NetEnv, ProtocolKind};
use ladon::workload::{run_experiment, ExperimentConfig};

#[test]
fn ladon_preserves_causality_under_straggler() {
    let r = run_experiment(
        &ExperimentConfig::new(ProtocolKind::LadonPbft, 8, NetEnv::Wan)
            .duration_secs(8.0)
            .warmup_secs(3.0)
            .with_stragglers(1, 10.0),
    );
    assert!(
        r.causal_strength > 0.999,
        "Ladon CS must be ~1.0, got {}",
        r.causal_strength
    );
}

#[test]
fn iss_violates_causality_under_straggler() {
    let r = run_experiment(
        &ExperimentConfig::new(ProtocolKind::IssPbft, 8, NetEnv::Wan)
            .duration_secs(8.0)
            .warmup_secs(3.0)
            .with_stragglers(1, 10.0),
    );
    assert!(
        r.causal_strength < 0.9,
        "pre-determined ordering must leak causality with a straggler, got {}",
        r.causal_strength
    );
}

#[test]
fn byzantine_rank_minimizers_cause_only_bounded_damage() {
    // §4.4 / Fig. 7: rank manipulation is bounded by certification — the
    // minimizer's rank stays at or above the median honest certified
    // rank, so Ladon under Byzantine stragglers remains far more causal
    // than pre-determined ordering under plain honest stragglers.
    let byz = run_experiment(
        &ExperimentConfig::new(ProtocolKind::LadonPbft, 8, NetEnv::Wan)
            .duration_secs(8.0)
            .warmup_secs(3.0)
            .with_stragglers(2, 5.0)
            .byzantine(),
    );
    let iss = run_experiment(
        &ExperimentConfig::new(ProtocolKind::IssPbft, 8, NetEnv::Wan)
            .duration_secs(8.0)
            .warmup_secs(3.0)
            .with_stragglers(2, 5.0),
    );
    assert!(byz.committed_txs > 0);
    // §4.4's bound is a *median* argument: with f' = f the minimizer can
    // dip to roughly the median honest rank, so some violations appear —
    // but orders of magnitude fewer than pre-determined ordering, whose
    // CS collapses toward zero.
    assert!(
        byz.causal_strength > 0.05,
        "Byzantine rank minimization must stay bounded, got {}",
        byz.causal_strength
    );
    assert!(
        byz.causal_strength > iss.causal_strength,
        "Byzantine Ladon ({}) must still beat honest-straggler ISS ({})",
        byz.causal_strength,
        iss.causal_strength
    );
}

#[test]
fn crash_triggers_view_change_and_recovery() {
    let mut c = cluster(ClusterOpts {
        protocol: ProtocolKind::LadonPbft,
        n: 4,
        crash: Some((2, 3.0)),
        submit_until_s: 19.0,
        ..Default::default()
    });
    // View-change timeout is the paper's 10 s; run long enough to recover.
    c.run_secs(20.0);
    let honest = [0usize, 1, 3];
    // Some replica observed the view change on instance 2.
    let vc_seen: usize = honest
        .iter()
        .map(|&r| {
            c.node(r)
                .metrics
                .view_changes
                .iter()
                .filter(|&&(_, i, _)| i == 2)
                .count()
        })
        .sum();
    assert!(
        vc_seen > 0,
        "the crashed leader's instance must view-change"
    );
    let nv_seen: usize = honest
        .iter()
        .map(|&r| c.node(r).metrics.new_views.len())
        .sum();
    assert!(nv_seen > 0, "a new view must install");
    c.assert_agreement(&honest);
    // Confirmation continued after recovery: blocks confirmed past the
    // crash + timeout horizon.
    let late_confirms = c
        .node(0)
        .metrics
        .confirms
        .iter()
        .filter(|cf| cf.time > ladon::types::TimeNs::from_secs(15))
        .count();
    assert!(
        late_confirms > 0,
        "confirmation must resume after the view change"
    );
}

#[test]
fn dqbft_sequences_through_ordering_instance() {
    let mut c = cluster(ClusterOpts {
        protocol: ProtocolKind::DqbftPbft,
        n: 4,
        submit_until_s: 5.0,
        ..Default::default()
    });
    c.run_secs(6.0);
    assert!(c.node(0).metrics.confirmed_txs > 0);
    c.assert_agreement(&[0, 1, 2, 3]);
}

/// The SB failure detector `D` (§3.2): when a baseline (pre-determined
/// ordering) leader crashes and stays quiet past the detector timeout,
/// ISS delivers ⊥ for its slots so the global log keeps advancing — the
/// paper's justification for why ISS tolerates *crash* faults even
/// though it collapses under timeout-evading stragglers.
#[test]
fn iss_quiet_leader_nil_delivery_unblocks_log() {
    let mut c = cluster(ClusterOpts {
        protocol: ProtocolKind::IssPbft,
        n: 4,
        crash: Some((2, 3.0)),
        submit_until_s: 45.0,
        // Keep the view change out of the way (its 10 s default would
        // replace the crashed leader before the 30 s quiet detector
        // fires) so this test isolates the ⊥-delivery path.
        view_timeout_s: Some(600.0),
        ..Default::default()
    });
    // Default quiet timeout is 30 s; run past two detector windows.
    c.run_secs(70.0);
    let honest = [0usize, 1, 3];
    c.assert_agreement(&honest);
    // Confirmation continued after the crash + detector horizon: nils
    // filled the crashed instance's slots.
    let late = c
        .node(0)
        .metrics
        .confirms
        .iter()
        .filter(|cf| cf.time > ladon::types::TimeNs::from_secs(40))
        .count();
    assert!(
        late > 0,
        "⊥ delivery must unblock the pre-determined log after a crash"
    );
    let nils = c
        .node(0)
        .metrics
        .confirms
        .iter()
        .filter(|cf| cf.is_nil)
        .count();
    assert!(nils > 0, "the crashed instance's slots must be ⊥-filled");
}
