//! Shared harness for integration tests: builds a full simulated
//! deployment and exposes per-replica state for safety assertions.

use ladon::core::{Behavior, MultiBftNode, NodeConfig, NodeMsg};
use ladon::crypto::KeyRegistry;
use ladon::sim::{Engine, NicNetwork, Topology};
use ladon::types::{NetEnv, ProtocolKind, ReplicaId, SystemConfig, TimeNs};
use ladon::workload::ClientFleet;

/// A deterministic execution-layer block: `count` derived txs starting
/// at `first_tx`, at global position `sn` (direct pipeline tests, no
/// consensus involved). Delegates to the canonical constructor so test
/// roots stay comparable with bench/example roots.
#[allow(dead_code)]
pub fn exec_block(sn: u64, first_tx: u64, count: u32) -> ladon::types::Block {
    ladon::types::Block::synthetic(sn, first_tx, count)
}

/// A running test deployment.
pub struct TestCluster {
    /// The engine; replicas are actors `0..n`, the client fleet is `n`.
    pub engine: Engine<NodeMsg>,
    /// Replica count (not every test target reads every field).
    #[allow(dead_code)]
    pub n: usize,
    /// System configuration used.
    #[allow(dead_code)]
    pub sys: SystemConfig,
    /// The PKI oracle (restart scenarios rebuild nodes with it).
    #[allow(dead_code)]
    pub registry: KeyRegistry,
    /// Protocol under test.
    #[allow(dead_code)]
    pub protocol: ProtocolKind,
}

/// Options for building a test cluster.
pub struct ClusterOpts {
    pub protocol: ProtocolKind,
    pub n: usize,
    pub env: NetEnv,
    pub stragglers: Vec<usize>,
    pub straggler_k: f64,
    pub byzantine: bool,
    pub crash: Option<(usize, f64)>,
    pub seed: u64,
    pub load_factor: f64,
    pub submit_until_s: f64,
    pub epoch_length: Option<u64>,
    /// Override the PBFT view-change timeout (seconds).
    pub view_timeout_s: Option<f64>,
    /// Partition windows `(replica, from_s, until_s)`: the replica is
    /// disconnected from everyone inside the window.
    pub partitions: Vec<(usize, f64, f64)>,
    /// Probability each message is silently dropped (robustness tests;
    /// the paper assumes reliable links).
    pub loss_probability: f64,
    /// Override the parallel execution-lane worker count (the
    /// fault-scenario matrix runs every fault at ≥ 2 lane counts).
    pub exec_lanes: Option<u32>,
    /// Override the execution keyspace size.
    pub exec_keyspace: Option<u32>,
    /// Override the cross-drain group-commit threshold (staged WAL
    /// records accumulated across confirmed-queue drains before the
    /// flush + apply barrier runs).
    pub wal_flush_max_records: Option<u32>,
}

impl Default for ClusterOpts {
    fn default() -> Self {
        Self {
            protocol: ProtocolKind::LadonPbft,
            n: 4,
            env: NetEnv::Lan,
            stragglers: Vec::new(),
            straggler_k: 10.0,
            byzantine: false,
            crash: None,
            seed: 7,
            load_factor: 1.0,
            submit_until_s: 5.0,
            epoch_length: None,
            view_timeout_s: None,
            partitions: Vec::new(),
            loss_probability: 0.0,
            exec_lanes: None,
            exec_keyspace: None,
            wal_flush_max_records: None,
        }
    }
}

/// Builds a deployment ready to run.
pub fn cluster(opts: ClusterOpts) -> TestCluster {
    let mut sys = SystemConfig::paper_default(opts.n, opts.env);
    if let Some(l) = opts.epoch_length {
        sys.epoch_length = l;
        // Keep the snapshot-serving policy inside the (possibly
        // shrunken) log retention window.
        sys.snapshot_min_lag = sys.snapshot_min_lag.min(l);
    }
    if let Some(t) = opts.view_timeout_s {
        sys.view_change_timeout = TimeNs::from_secs_f64(t);
    }
    if let Some(l) = opts.exec_lanes {
        sys.exec_lanes = l;
    }
    if let Some(k) = opts.exec_keyspace {
        sys.exec_keyspace = k;
    }
    if let Some(t) = opts.wal_flush_max_records {
        sys.wal_flush_max_records = t;
    }
    sys.validate()
        .expect("cluster options produced a bad config");
    let registry = KeyRegistry::generate(opts.n, sys.opt_keys, opts.seed ^ 0x5eed);
    let topo = Topology::paper(opts.env, opts.n + 1);
    let mut net = NicNetwork::new(topo);
    net.drop_probability = opts.loss_probability;
    for &(r, from, until) in &opts.partitions {
        net.partition(r, TimeNs::from_secs_f64(from), TimeNs::from_secs_f64(until));
    }
    let mut engine: Engine<NodeMsg> = Engine::new(net, opts.seed);
    for r in 0..opts.n {
        let behavior = Behavior {
            straggler_k: opts.stragglers.contains(&r).then_some(opts.straggler_k),
            rank_minimize: opts.byzantine && opts.stragglers.contains(&r),
            stale_rank_reports: false,
            crash_at: opts
                .crash
                .and_then(|(cr, at)| (cr == r).then(|| TimeNs::from_secs_f64(at))),
        };
        engine.add_actor(Box::new(MultiBftNode::new(NodeConfig {
            sys: sys.clone(),
            protocol: opts.protocol,
            me: ReplicaId(r as u32),
            registry: registry.clone(),
            behavior,
            sample_interval: None,
        })));
    }
    let tx_rate = sys.total_block_rate * sys.batch_size as f64 * opts.load_factor;
    engine.add_actor(Box::new(ClientFleet::new(
        opts.n,
        sys.m,
        tx_rate,
        sys.tx_bytes,
        TimeNs::from_secs_f64(opts.submit_until_s),
    )));
    TestCluster {
        engine,
        n: opts.n,
        sys,
        registry,
        protocol: opts.protocol,
    }
}

impl TestCluster {
    /// Runs until `t` seconds of simulated time.
    pub fn run_secs(&mut self, t: f64) {
        self.engine.run_until(TimeNs::from_secs_f64(t));
    }

    /// The node actor for replica `r`.
    pub fn node(&self, r: usize) -> &MultiBftNode {
        self.engine.actor_as::<MultiBftNode>(r).expect("replica")
    }

    /// The confirmed global log of replica `r` as
    /// `(sn, instance, round, rank, digest-ish)` tuples, sorted by `sn`.
    pub fn confirmed_log(&self, r: usize) -> Vec<(u64, u32, u64, u64)> {
        let mut log: Vec<(u64, u32, u64, u64)> = self
            .node(r)
            .metrics
            .confirms
            .iter()
            .map(|c| (c.sn, c.instance, c.round, c.rank))
            .collect();
        log.sort_unstable();
        log
    }

    /// The highest `sn` replica `r` has confirmed (its log frontier), or 0
    /// for an empty log. A replica that fast-forwarded over a snapshot has
    /// a *gap* in its confirm records but the same frontier as its peers,
    /// so progress comparisons should use this, not log length.
    #[allow(dead_code)]
    pub fn confirmed_frontier(&self, r: usize) -> u64 {
        self.node(r)
            .metrics
            .confirms
            .iter()
            .map(|c| c.sn)
            .max()
            .unwrap_or(0)
    }

    /// Asserts G-Agreement: every pair of honest replicas' confirmed logs
    /// agree at every `sn` both have recorded. Joined on `sn` rather than
    /// log position because a replica that installed an execution snapshot
    /// legitimately skips the confirm records the snapshot covers.
    pub fn assert_agreement(&self, honest: &[usize]) {
        let logs: Vec<_> = honest.iter().map(|&r| self.confirmed_log(r)).collect();
        for (ai, a) in logs.iter().enumerate() {
            for (bi, b) in logs.iter().enumerate().skip(ai + 1) {
                let bmap: std::collections::HashMap<u64, &(u64, u32, u64, u64)> =
                    b.iter().map(|e| (e.0, e)).collect();
                for ea in a {
                    if let Some(eb) = bmap.get(&ea.0) {
                        assert_eq!(
                            &ea, eb,
                            "replicas {} and {} disagree at sn {}",
                            honest[ai], honest[bi], ea.0
                        );
                    }
                }
            }
        }
    }
}
