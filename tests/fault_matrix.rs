//! Adversarial fault-scenario matrix for the durability degradation
//! state machine and responder-health sync rotation.
//!
//! Scenarios: a replica's disk fills under live load (degrade → space
//! freed → backoff retries → recovery, roots byte-identical to its
//! never-degraded peers), a Byzantine responder replaying stale-but-
//! signed snapshots is quarantined while the cluster still syncs,
//! flapping fsync failures flutter the node between Normal and Degraded
//! without ever acknowledging an undurable range, and a crash while
//! Degraded loses only unacknowledged staged records. Faults are
//! injected through the first-class `ladon::state::faults` plan — no
//! test-local storage wrappers.

mod common;

use common::{cluster, ClusterOpts, TestCluster};
use ladon::core::{Behavior, MultiBftNode, NodeConfig, NodeMode, NodeMsg};
use ladon::sim::{ActorId, Context, SimRng};
use ladon::state::{ExecutionPipeline, FaultBackend, FaultPlan, FileBackend, WalOptions};
use ladon::types::{Digest, ProtocolKind, ReplicaId, Round, SystemConfig, TimeNs};
use std::collections::BTreeMap;

/// The lane counts the disk-full scenario runs at (the degraded →
/// recovered root must be lane-count invariant like every other root).
const LANE_MATRIX: [u32; 2] = [1, 4];

fn scratch_dir(tag: &str, k: u32) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("ladon-{tag}-{}-{k}", std::process::id()))
}

fn wal_opts(sys: &SystemConfig) -> WalOptions {
    WalOptions {
        lane_groups: sys.wal_lane_groups,
        segment_records: sys.wal_segment_records,
    }
}

/// Swaps replica 3 for one journaling to `dir` through a fault-injecting
/// WAL backend driven by `plan` (the plan handle stays with the caller:
/// its shared atomics script faults mid-run deterministically).
fn add_faulted_replica(c: &mut TestCluster, dir: &std::path::Path, plan: &FaultPlan, lanes: u32) {
    let backend = FaultBackend::new(
        FileBackend::open_dir(dir.join("wal")).unwrap(),
        plan.clone(),
    );
    let exec = ExecutionPipeline::recover_backend(
        dir,
        Box::new(backend),
        c.sys.exec_keyspace,
        lanes,
        wal_opts(&c.sys),
    )
    .unwrap();
    let node = MultiBftNode::with_execution(
        NodeConfig {
            sys: c.sys.clone(),
            protocol: c.protocol,
            me: ReplicaId(3),
            registry: c.registry.clone(),
            behavior: Behavior::default(),
            sample_interval: None,
        },
        exec,
    );
    c.engine.restart_actor(3, Box::new(node));
}

/// Asserts replicas `a` and `b` reported byte-identical checkpoint roots
/// at every epoch both checkpointed, returning how many epochs compared.
/// The healthy peers are the fault-free same-seed replicas, so equality
/// here *is* the "byte-identical to a never-degraded run" claim.
fn assert_epoch_roots_match(c: &TestCluster, a: usize, b: usize) -> usize {
    let roots = |r: usize| -> BTreeMap<u64, Digest> {
        c.node(r)
            .metrics
            .state_roots
            .iter()
            .map(|&(_, e, d)| (e, d))
            .collect()
    };
    let ra = roots(a);
    let rb = roots(b);
    let mut shared = 0;
    for (e, d) in &ra {
        if let Some(d2) = rb.get(e) {
            assert_eq!(d, d2, "epoch {e}: roots diverge between {a} and {b}");
            shared += 1;
        }
    }
    shared
}

/// Drains replica 3's pipeline (staged + in-flight) so its on-disk
/// artifacts and in-memory frontier can be compared exactly, then
/// asserts a fresh process recovering from the directory reproduces the
/// applied frontier and root byte-for-byte.
fn assert_disk_coherent(c: &mut TestCluster, dir: &std::path::Path, lanes: u32, tag: &str) {
    let n3 = c.engine.actor_as_mut::<MultiBftNode>(3).unwrap();
    n3.exec.flush_staged();
    let applied = n3.exec.applied();
    let root = n3.exec.state_root();
    let recovered =
        ExecutionPipeline::recover_opts(dir, c.sys.exec_keyspace, lanes, wal_opts(&c.sys)).unwrap();
    assert_eq!(
        recovered.applied(),
        applied,
        "{tag}: disk recovery frontier diverges from the live replica"
    );
    assert_eq!(
        recovered.state_root(),
        root,
        "{tag}: disk recovery root diverges — an undurable range was \
         treated as applied"
    );
}

/// Disk-full under live load: replica 3's storage rejects writes with
/// ENOSPC mid-run. The replica must (a) cross the consecutive-failure
/// threshold and enter Degraded, (b) stop checkpointing while degraded,
/// (c) keep retrying on backoff, (d) recover once space frees, and
/// (e) end with checkpoint roots byte-identical to its never-degraded
/// peers and a disk image that reproduces its state exactly.
fn disk_full_degrades_then_recovers_at(lanes: u32) {
    let dir = scratch_dir("fault-enospc", lanes);
    let _ = std::fs::remove_dir_all(&dir);
    let mut c = cluster(ClusterOpts {
        protocol: ProtocolKind::LadonPbft,
        n: 4,
        epoch_length: Some(16),
        submit_until_s: 20.0,
        exec_lanes: Some(lanes),
        ..Default::default()
    });
    let plan = FaultPlan::unlimited();
    add_faulted_replica(&mut c, &dir, &plan, lanes);

    // Healthy warm-up: the replica journals durably.
    c.run_secs(6.0);
    assert_eq!(c.node(3).mode(), NodeMode::Normal);
    assert!(
        c.node(3).exec.applied() > 0,
        "lanes={lanes}: no execution progress before the fault"
    );

    // The disk fills while the workload keeps running.
    let _ = plan.clone().enospc_after(0);
    c.run_secs(14.0);
    {
        let n3 = c.node(3);
        assert_eq!(
            n3.mode(),
            NodeMode::Degraded,
            "lanes={lanes}: ENOSPC under load must degrade the replica"
        );
        assert!(n3.metrics.degraded_entries >= 1);
        assert!(
            n3.metrics.degraded_retries >= 1,
            "lanes={lanes}: the retry timer must have fired against the \
             still-full disk"
        );
        assert!(
            n3.metrics.trace.node_event_count("mode_degraded") >= 1,
            "lanes={lanes}: the transition must reach the trace journal"
        );
        assert_eq!(
            n3.metrics.trace.node_event_count("mode_normal"),
            0,
            "lanes={lanes}: no recovery is possible while the disk is full"
        );
    }

    // Space frees: the next backoff retry rewrites the log from the
    // in-memory mirror and drains the staged backlog.
    plan.free_space();
    c.run_secs(60.0);
    {
        let n3 = c.node(3);
        assert_eq!(
            n3.mode(),
            NodeMode::Normal,
            "lanes={lanes}: the replica must re-enter Normal once space frees"
        );
        assert!(n3.metrics.trace.node_event_count("mode_normal") >= 1);
        assert!(
            n3.metrics.wal_flush_failures > 0,
            "lanes={lanes}: the outage must have been loud, not silent"
        );
        // Execution resumed past the degraded window.
        assert!(
            n3.exec.applied() > 0,
            "lanes={lanes}: no execution after recovery"
        );
    }
    // Checkpoint roots at every epoch shared with a healthy peer are
    // byte-identical: degradation deferred durability, it never forked
    // the state machine.
    let shared = assert_epoch_roots_match(&c, 3, 0);
    assert!(
        shared >= 1,
        "lanes={lanes}: the recovered replica must checkpoint again \
         (no comparable epochs found)"
    );
    c.assert_agreement(&[0, 1, 2, 3]);
    assert_disk_coherent(&mut c, &dir, lanes, &format!("enospc lanes={lanes}"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn disk_full_degrades_then_recovers_lane_matrix() {
    for lanes in LANE_MATRIX {
        disk_full_degrades_then_recovers_at(lanes);
    }
}

/// Flapping fsync: two separate bursts of fsync failures flutter the
/// replica Normal → Degraded → Normal twice. Every entry is counted,
/// recovery completes after each burst, and the final disk image is
/// coherent — the flutter never acknowledged an undurable range.
#[test]
fn fsync_flutter_degrades_twice_and_stays_coherent() {
    let lanes = 4;
    let dir = scratch_dir("fault-flutter", lanes);
    let _ = std::fs::remove_dir_all(&dir);
    let mut c = cluster(ClusterOpts {
        protocol: ProtocolKind::LadonPbft,
        n: 4,
        epoch_length: Some(16),
        submit_until_s: 30.0,
        exec_lanes: Some(lanes),
        ..Default::default()
    });
    let plan = FaultPlan::unlimited();
    add_faulted_replica(&mut c, &dir, &plan, lanes);

    c.run_secs(5.0);
    // First burst: a flush job fsyncs every lane group it staged into,
    // so the budget is sized in *barriers*: enough failing syncs to
    // cross the consecutive-failure threshold, finite so the backoff
    // retries exhaust the burst and repair.
    let _ = plan.clone().fail_fsyncs(64);
    c.run_secs(10.0);
    assert!(
        c.node(3).metrics.degraded_entries >= 1,
        "first fsync burst must degrade the replica"
    );
    assert_eq!(
        c.node(3).mode(),
        NodeMode::Normal,
        "the burst must exhaust against retries and recover"
    );

    // Second burst: the state machine must re-enter cleanly, not latch.
    let _ = plan.clone().fail_fsyncs(64);
    c.run_secs(20.0);
    let n3 = c.node(3);
    assert!(
        n3.metrics.degraded_entries >= 2,
        "the second burst must degrade the replica again \
         (got {} entries)",
        n3.metrics.degraded_entries
    );
    assert_eq!(n3.mode(), NodeMode::Normal);
    assert!(n3.metrics.trace.node_event_count("mode_degraded") >= 2);
    assert!(n3.metrics.trace.node_event_count("mode_normal") >= 2);

    // Quiesce, then the durability contract: nothing applied that the
    // disk cannot reproduce.
    c.run_secs(45.0);
    let shared = assert_epoch_roots_match(&c, 3, 0);
    assert!(shared >= 1, "flutter: no comparable checkpoint epochs");
    c.assert_agreement(&[0, 1, 2, 3]);
    assert_disk_coherent(&mut c, &dir, lanes, "flutter");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Crash while Degraded: the staged-but-never-flushed backlog is lost
/// with the process — by design, it was never acknowledged — and the
/// restarted replica recovers the durable prefix from disk, re-syncs
/// from peers, and converges.
#[test]
fn crash_while_degraded_loses_only_unacknowledged_records() {
    let lanes = 4;
    let dir = scratch_dir("fault-crash-degraded", lanes);
    let _ = std::fs::remove_dir_all(&dir);
    let mut c = cluster(ClusterOpts {
        protocol: ProtocolKind::LadonPbft,
        n: 4,
        epoch_length: Some(16),
        submit_until_s: 30.0,
        exec_lanes: Some(lanes),
        ..Default::default()
    });
    let plan = FaultPlan::unlimited();
    add_faulted_replica(&mut c, &dir, &plan, lanes);

    c.run_secs(6.0);
    let _ = plan.clone().enospc_after(0);
    c.run_secs(8.0);
    let (pre_applied, pre_staged) = {
        let n3 = c.node(3);
        assert_eq!(n3.mode(), NodeMode::Degraded, "replica must be degraded");
        (n3.exec.applied(), n3.exec.staged_records())
    };
    assert!(
        pre_staged > 0,
        "load must have accumulated an unacknowledged staged backlog"
    );

    // Process dies while degraded. A new process recovers from the disk
    // artifacts with healthy storage: it holds at most the durable
    // prefix — the staged backlog vanished with the process, and that is
    // legal precisely because it was never acknowledged.
    let recovered =
        ExecutionPipeline::recover_opts(&dir, c.sys.exec_keyspace, lanes, wal_opts(&c.sys))
            .unwrap();
    assert!(
        recovered.applied() <= pre_applied,
        "recovery must not conjure records the live replica never applied"
    );
    let node = MultiBftNode::with_execution(
        NodeConfig {
            sys: c.sys.clone(),
            protocol: c.protocol,
            me: ReplicaId(3),
            registry: c.registry.clone(),
            behavior: Behavior::default(),
            sample_interval: None,
        },
        recovered,
    );
    c.engine.restart_actor(3, Box::new(node));
    c.run_secs(60.0);

    let n3 = c.node(3);
    assert_eq!(n3.mode(), NodeMode::Normal, "fresh process starts Normal");
    assert!(
        n3.metrics.sync_requests > 0,
        "the restarted replica must detect its lag and sync"
    );
    assert!(
        n3.exec.applied() > pre_applied,
        "execution must move past the pre-crash frontier after rejoin"
    );
    assert_eq!(
        n3.epoch(),
        c.node(0).epoch(),
        "the restarted replica must rejoin the cluster's epoch"
    );
    c.assert_agreement(&[0, 1, 2, 3]);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Responder health: driven through the real request/response handlers
// with sender attribution, no network in between.
// ---------------------------------------------------------------------

/// Minimal context for driving node handlers directly.
struct DirectCtx {
    rng: SimRng,
    sent: Vec<(ActorId, NodeMsg)>,
}

impl DirectCtx {
    fn new() -> Self {
        Self {
            rng: SimRng::new(7),
            sent: Vec::new(),
        }
    }
}

impl Context<NodeMsg> for DirectCtx {
    fn now(&self) -> TimeNs {
        TimeNs(0)
    }
    fn self_id(&self) -> ActorId {
        3
    }
    fn send_sized(&mut self, to: ActorId, msg: NodeMsg, _bytes: u64) {
        self.sent.push((to, msg));
    }
    fn set_timer(&mut self, _delay: TimeNs, _id: u64) {}
    fn crash(&mut self, _actor: ActorId) {}
    fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }
}

/// A Byzantine responder that keeps replaying a stale-but-signed
/// snapshot (old head + its genuine checkpoint proof) is quarantined
/// after `sync_quarantine_threshold` consecutive rejections — and the
/// requester still syncs from honest peers afterwards.
#[test]
fn stale_snapshot_responder_quarantined_while_cluster_still_syncs() {
    let mut c = cluster(ClusterOpts {
        protocol: ProtocolKind::LadonPbft,
        n: 4,
        epoch_length: Some(16),
        submit_until_s: 12.0,
        ..Default::default()
    });
    c.run_secs(15.0);
    let snap = c
        .node(0)
        .exec
        .latest_snapshot()
        .expect("responder must have checkpointed")
        .clone();

    let mut requester = MultiBftNode::new(NodeConfig {
        sys: c.sys.clone(),
        protocol: c.protocol,
        me: ReplicaId(3),
        registry: c.registry.clone(),
        behavior: Behavior::default(),
        sample_interval: None,
    });
    let mut ctx = DirectCtx::new();

    // Honest install from peer 0 first: the requester fast-forwards to
    // the snapshot, which also makes any replay of that snapshot stale.
    let req = requester.build_sync_request();
    let honest = c
        .node(0)
        .build_sync_response(&req)
        .expect("a from-zero requester must be served");
    assert!(honest.snapshot.is_some());
    let stale = honest.clone();
    requester.on_sync_response_from(ReplicaId(0), honest, &mut ctx);
    assert_eq!(requester.metrics.snapshot_installs, 1);
    assert_eq!(requester.exec.applied(), snap.applied);
    let h0 = &requester.responder_health()[0];
    assert!(
        h0.verified_chunks > 0,
        "peer 0's chunks must score verified"
    );
    assert!(!h0.quarantined);

    // Peer 1 replays the same (now stale) snapshot over and over. Every
    // proof still verifies — only the applied frontier betrays it — and
    // after the threshold the responder is quarantined.
    let threshold = c.sys.sync_quarantine_threshold;
    for i in 0..threshold {
        assert!(
            !requester.responder_health()[1].quarantined,
            "quarantined after {i} rejections, threshold is {threshold}"
        );
        requester.on_sync_response_from(ReplicaId(1), stale.clone(), &mut ctx);
    }
    let h1 = &requester.responder_health()[1];
    assert!(
        h1.quarantined,
        "{threshold} stale replays must quarantine the responder"
    );
    assert!(h1.rejected_chunks >= threshold as u64);
    assert_eq!(requester.metrics.sync_responders_quarantined, 1);
    assert_eq!(
        requester.metrics.snapshot_installs, 1,
        "stale replays must never install"
    );

    // The cluster still syncs: the workload continues, a newer snapshot
    // appears, and an honest peer serves it to the requester despite the
    // quarantined neighbor.
    let mut c2 = cluster(ClusterOpts {
        protocol: ProtocolKind::LadonPbft,
        n: 4,
        epoch_length: Some(16),
        submit_until_s: 28.0,
        ..Default::default()
    });
    c2.run_secs(32.0);
    let newer = c2
        .node(2)
        .exec
        .latest_snapshot()
        .expect("longer run must checkpoint")
        .clone();
    assert!(
        newer.applied > snap.applied,
        "the longer run must produce a newer snapshot"
    );
    let req2 = requester.build_sync_request();
    let resp2 = c2
        .node(2)
        .build_sync_response(&req2)
        .expect("an honest peer must serve the lagging requester");
    requester.on_sync_response_from(ReplicaId(2), resp2, &mut ctx);
    assert_eq!(
        requester.metrics.snapshot_installs, 2,
        "quarantining one responder must not stop syncing from others"
    );
    assert!(requester.responder_health()[1].quarantined);
    assert!(!requester.responder_health()[2].quarantined);
}

/// Degraded replicas stop serving snapshots (their own durable path is
/// suspect) but keep serving log entries.
#[test]
fn degraded_replica_stops_serving_snapshots_but_serves_entries() {
    let mut c = cluster(ClusterOpts {
        protocol: ProtocolKind::LadonPbft,
        n: 4,
        epoch_length: Some(16),
        submit_until_s: 12.0,
        ..Default::default()
    });
    c.run_secs(15.0);
    // A requester trailing the responder by a couple of rounds per
    // instance with an empty state machine: the gap is inside the
    // retained log window (entries servable) AND far enough behind in
    // applied terms that a healthy responder would ship its snapshot.
    let mut lagging = c.node(0).build_sync_request();
    for r in &mut lagging.frontier {
        *r = Round(r.0.saturating_sub(2));
    }
    lagging.applied = 0;
    lagging.lane_roots = Vec::new();

    let healthy_resp = c
        .node(0)
        .build_sync_response(&lagging)
        .expect("healthy replica serves");
    assert!(
        healthy_resp.snapshot.is_some(),
        "a healthy replica serves the snapshot to a lagging requester"
    );
    assert!(
        !healthy_resp.entries.is_empty(),
        "a healthy replica serves the retained log entries"
    );

    // Same replica, forced Degraded: snapshot serving stops, entries
    // remain. (`set_degraded_for_test` flips only the mode gate.)
    let n0 = c.engine.actor_as_mut::<MultiBftNode>(0).unwrap();
    n0.set_degraded_for_test();
    let degraded_resp = c
        .node(0)
        .build_sync_response(&lagging)
        .expect("entries must still be served");
    assert!(
        degraded_resp.snapshot.is_none(),
        "a degraded replica must not serve snapshots"
    );
    assert!(
        !degraded_resp.entries.is_empty(),
        "log entries carry their own proofs and must still be served"
    );
}
