//! G-Liveness (§3.3) and epoch pacemaker behavior (§5.2.1) end to end.

mod common;

use common::{cluster, ClusterOpts};
use ladon::types::ProtocolKind;

#[test]
fn submitted_transactions_eventually_confirm() {
    // Submit for 3 s at 60% load, then let the pipeline drain: every
    // deposited transaction must be confirmed.
    let mut c = cluster(ClusterOpts {
        protocol: ProtocolKind::LadonPbft,
        n: 4,
        load_factor: 0.6,
        submit_until_s: 3.0,
        ..Default::default()
    });
    c.run_secs(12.0);
    let node = c.node(0);
    let deposited: u64 = (0..4).map(|r| c.node(r).metrics.deposited_txs).sum();
    assert!(deposited > 0);
    assert!(
        node.metrics.confirmed_txs >= deposited * 95 / 100,
        "confirmed {} of {} deposited txs",
        node.metrics.confirmed_txs,
        deposited
    );
}

#[test]
fn epochs_advance_and_ranks_respect_ranges() {
    // Short epochs force several boundary crossings.
    let mut c = cluster(ClusterOpts {
        protocol: ProtocolKind::LadonPbft,
        n: 4,
        epoch_length: Some(8),
        submit_until_s: 7.0,
        ..Default::default()
    });
    c.run_secs(8.0);
    let node = c.node(0);
    assert!(
        node.metrics.epochs.len() >= 2,
        "expected several epoch advances, saw {:?}",
        node.metrics.epochs
    );
    // Every confirmed block's rank lies inside some epoch's range, and
    // ranks within an instance are strictly increasing.
    let mut per_instance: std::collections::HashMap<u32, u64> = Default::default();
    for cfm in &node.metrics.confirms {
        let last = per_instance.entry(cfm.instance).or_insert(0);
        assert!(
            cfm.rank > *last || (*last == 0 && cfm.rank >= 1),
            "instance {} rank regressed: {} after {}",
            cfm.instance,
            cfm.rank,
            last
        );
        *per_instance.get_mut(&cfm.instance).unwrap() = cfm.rank;
    }
    // All replicas advanced through the same epochs.
    let e0: Vec<u64> = node.metrics.epochs.iter().map(|&(_, e)| e).collect();
    for r in 1..4 {
        let er: Vec<u64> = c.node(r).metrics.epochs.iter().map(|&(_, e)| e).collect();
        let shared = e0.len().min(er.len());
        assert_eq!(&e0[..shared], &er[..shared], "replica {r} epoch mismatch");
    }
}

#[test]
fn ladon_opt_also_advances_epochs() {
    let mut c = cluster(ClusterOpts {
        protocol: ProtocolKind::LadonOptPbft,
        n: 4,
        epoch_length: Some(8),
        submit_until_s: 5.0,
        ..Default::default()
    });
    c.run_secs(6.0);
    assert!(
        !c.node(0).metrics.epochs.is_empty(),
        "Ladon-opt must cross at least one epoch boundary"
    );
    c.assert_agreement(&[0, 1, 2, 3]);
}

#[test]
fn straggler_slows_epoch_boundaries_but_not_confirmation() {
    // With a straggler, Ladon keeps confirming between boundaries; the
    // boundary stall is bounded by the straggler's proposal interval.
    let mut c = cluster(ClusterOpts {
        protocol: ProtocolKind::LadonPbft,
        n: 4,
        stragglers: vec![1],
        straggler_k: 4.0,
        epoch_length: Some(16),
        submit_until_s: 9.0,
        ..Default::default()
    });
    c.run_secs(10.0);
    let node = c.node(0);
    assert!(node.metrics.confirmed_txs > 0);
    assert!(
        node.metrics.confirms.len() > 20,
        "dynamic ordering should keep confirming despite the straggler: {}",
        node.metrics.confirms.len()
    );
}

#[test]
fn hotstuff_liveness() {
    let mut c = cluster(ClusterOpts {
        protocol: ProtocolKind::LadonHotStuff,
        n: 4,
        submit_until_s: 5.0,
        ..Default::default()
    });
    c.run_secs(8.0);
    assert!(c.node(0).metrics.confirmed_txs > 0);
    assert!(c.node(0).metrics.confirms.len() > 5);
}
