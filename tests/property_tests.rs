//! Property-based tests (proptest) on the core invariants:
//! ordering determinism, rank monotonicity, crypto roundtrips, and
//! execution recovery (WAL replay from any snapshot prefix; torn-write
//! tolerance of the segmented WAL).

// Only `exec_block` is used from the shared harness here; the cluster
// machinery stays dormant in this binary.
#[allow(dead_code)]
mod common;

use common::exec_block;
use ladon::core::{GlobalOrderer, LadonOrderer, PredeterminedOrderer};
use ladon::crypto::{sha256, AggregateSignature, KeyRegistry, Sha256, Signature};
use ladon::state::{
    delta_lanes, lane_of, ExecOutcome, ExecutionPipeline, KvState, Snapshot, SnapshotChunk,
    WalOptions, DEFAULT_KEYSPACE, MERKLE_LANES,
};
use ladon::types::{Batch, Block, BlockHeader, Digest, InstanceId, Rank, ReplicaId, Round, TimeNs};
use ladon::types::{TxId, TxOp};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A per-case unique scratch directory (proptest cases run in sequence
/// but must never share on-disk WAL state).
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "ladon-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn blk(instance: u32, round: u64, rank: u64) -> Block {
    Block {
        header: BlockHeader {
            index: InstanceId(instance),
            round: Round(round),
            rank: Rank(rank),
            payload_digest: Digest([instance as u8; 32]),
        },
        batch: Batch::empty(0),
        proposed_at: TimeNs::ZERO,
    }
}

/// A per-instance schedule of strictly increasing ranks, as MR-Monotonicity
/// guarantees (Lemma 2), plus a delivery permutation.
fn rank_schedules() -> impl Strategy<Value = (Vec<Vec<u64>>, Vec<usize>)> {
    // 2..4 instances, 1..8 blocks each, rank increments 1..4.
    (2usize..4, proptest::collection::vec(1u64..4, 1..20)).prop_flat_map(|(m, incs)| {
        let mut schedules: Vec<Vec<u64>> = vec![Vec::new(); m];
        let mut rank = 0u64;
        for (i, inc) in incs.iter().enumerate() {
            rank += inc;
            schedules[i % m].push(rank);
        }
        let total: usize = schedules.iter().map(Vec::len).sum();
        (
            Just(schedules),
            Just(()),
            proptest::collection::vec(any::<usize>(), total),
        )
            .prop_map(|(s, (), perm)| (s, perm))
    })
}

/// Expands schedules into blocks and delivers them in a permutation-driven
/// interleaving (respecting per-instance commit order, as SB guarantees).
fn deliver_interleaved(schedules: &[Vec<u64>], perm: &[usize]) -> Vec<(u64, u32, u64)> {
    let m = schedules.len();
    let mut orderer = LadonOrderer::new(m);
    let mut next: Vec<usize> = vec![0; m];
    let mut out = Vec::new();
    let mut p = 0usize;
    loop {
        // Instances that still have blocks to deliver.
        let avail: Vec<usize> = (0..m).filter(|&i| next[i] < schedules[i].len()).collect();
        if avail.is_empty() {
            break;
        }
        let pick = avail[perm.get(p).copied().unwrap_or(0) % avail.len()];
        p += 1;
        let round = next[pick] as u64 + 1;
        let rank = schedules[pick][next[pick]];
        next[pick] += 1;
        for c in orderer.on_partial_commit(blk(pick as u32, round, rank), TimeNs::ZERO) {
            out.push((c.sn, c.block.index().0, c.block.round().0));
        }
    }
    out
}

proptest! {
    /// G-Agreement determinism: any two delivery interleavings of the same
    /// per-instance logs confirm the same global prefix in the same order.
    #[test]
    fn ordering_agreement_across_interleavings(
        (schedules, perm1) in rank_schedules(),
        perm2 in proptest::collection::vec(any::<usize>(), 0..40),
    ) {
        let a = deliver_interleaved(&schedules, &perm1);
        let b = deliver_interleaved(&schedules, &perm2);
        let shared = a.len().min(b.len());
        prop_assert_eq!(&a[..shared], &b[..shared]);
    }

    /// The confirmed log is sorted by the ≺ relation and sns are dense.
    #[test]
    fn ordering_log_sorted_by_precedence((schedules, perm) in rank_schedules()) {
        let m = schedules.len();
        let mut orderer = LadonOrderer::new(m);
        let mut next = vec![0usize; m];
        let mut keys = Vec::new();
        let mut p = 0usize;
        loop {
            let avail: Vec<usize> = (0..m).filter(|&i| next[i] < schedules[i].len()).collect();
            if avail.is_empty() { break; }
            let pick = avail[perm.get(p).copied().unwrap_or(0) % avail.len()];
            p += 1;
            let round = next[pick] as u64 + 1;
            let rank = schedules[pick][next[pick]];
            next[pick] += 1;
            for c in orderer.on_partial_commit(blk(pick as u32, round, rank), TimeNs::ZERO) {
                prop_assert_eq!(c.sn, keys.len() as u64);
                keys.push(c.block.key());
            }
        }
        for w in keys.windows(2) {
            prop_assert!(w[0] < w[1], "log out of order: {:?} then {:?}", w[0], w[1]);
        }
    }

    /// Pre-determined ordering confirms exactly in sn order regardless of
    /// arrival interleaving.
    #[test]
    fn predetermined_confirms_in_sn_order(perm in proptest::collection::vec(any::<usize>(), 0..40)) {
        let m = 3usize;
        let rounds = 5u64;
        let mut orderer = PredeterminedOrderer::new(ladon::core::BaselineKind::Iss, m);
        let mut next = vec![0u64; m];
        let mut sns = Vec::new();
        let mut p = 0usize;
        loop {
            let avail: Vec<usize> = (0..m).filter(|&i| next[i] < rounds).collect();
            if avail.is_empty() { break; }
            let pick = avail[perm.get(p).copied().unwrap_or(0) % avail.len()];
            p += 1;
            next[pick] += 1;
            for c in orderer.on_partial_commit(blk(pick as u32, next[pick], next[pick]), TimeNs::ZERO) {
                sns.push(c.sn);
            }
        }
        prop_assert_eq!(sns.len() as u64, rounds * m as u64);
        for (i, sn) in sns.iter().enumerate() {
            prop_assert_eq!(*sn, i as u64);
        }
    }

    /// SHA-256 incremental hashing equals one-shot for arbitrary chunkings.
    #[test]
    fn sha256_chunking_invariance(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        cuts in proptest::collection::vec(any::<usize>(), 0..8),
    ) {
        let oneshot = sha256(&data);
        let mut h = Sha256::new();
        let mut idx = 0usize;
        let mut points: Vec<usize> = cuts.iter().map(|c| c % (data.len() + 1)).collect();
        points.sort_unstable();
        for p in points {
            if p > idx {
                h.update(&data[idx..p]);
                idx = p;
            }
        }
        h.update(&data[idx..]);
        prop_assert_eq!(h.finalize(), oneshot);
    }

    /// Aggregate signatures verify for any distinct signer subset and fail
    /// under message tampering.
    #[test]
    fn aggregate_roundtrip_any_subset(
        subset in proptest::collection::btree_set(0u32..16, 1..16),
        msg in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let reg = KeyRegistry::generate(16, 2, 99);
        let sigs: Vec<Signature> = subset
            .iter()
            .map(|&r| Signature::sign(&reg.signer(ReplicaId(r)), b"prop", &msg))
            .collect();
        let agg = AggregateSignature::aggregate(&sigs, 16).expect("distinct signers");
        prop_assert!(agg.verify(&reg, b"prop", &msg));
        let mut tampered = msg.clone();
        tampered[0] ^= 0xff;
        prop_assert!(!agg.verify(&reg, b"prop", &tampered));
    }

    /// WAL replay from *any* snapshot prefix reproduces the same state
    /// root: execute a random block sequence, checkpoint at a random cut,
    /// keep executing, then rebuild a pipeline from the exported snapshot
    /// + WAL tail and compare roots, applied frontiers and tx counts.
    #[test]
    fn wal_replay_from_any_snapshot_prefix_reproduces_root(
        counts in proptest::collection::vec(0u32..96, 1..40),
        cut in any::<usize>(),
    ) {
        let mut p = ExecutionPipeline::in_memory(DEFAULT_KEYSPACE);
        let cut = cut % counts.len();
        let mut first_tx = 0u64;
        for (sn, &count) in counts.iter().enumerate() {
            let block = exec_block(sn as u64, first_tx, count);
            first_tx += count as u64;
            let out = p.execute(sn as u64, &block);
            prop_assert_eq!(out, ExecOutcome::Applied { txs: count as u64 });
            if sn == cut {
                // Snapshot here; everything after lands in the WAL tail.
                p.checkpoint(0, vec![0; 4]);
            }
        }
        let (snap, wal) = p.export_parts();
        let recovered =
            ExecutionPipeline::from_parts(snap.as_deref(), &wal, DEFAULT_KEYSPACE);
        prop_assert_eq!(recovered.applied(), p.applied());
        prop_assert_eq!(recovered.executed_txs(), p.executed_txs());
        prop_assert_eq!(recovered.state_root(), p.state_root());
    }

    /// Lane-count invariance: for arbitrary op sequences (random block
    /// sizes over a random keyspace) and any execution-lane count in
    /// {1, 2, 4, 8}, the sharded state root — and the whole lane-root
    /// vector — equals the 1-lane result, and a snapshot taken at the end
    /// round-trips the lane-root vector byte-identically through
    /// encode/decode.
    #[test]
    fn sharded_root_is_lane_count_invariant(
        counts in proptest::collection::vec(0u32..96, 1..24),
        keyspace in 64u32..1024,
    ) {
        let mut reference: Option<ExecutionPipeline> = None;
        for lanes in [1u32, 2, 4, 8] {
            let mut p = ExecutionPipeline::in_memory_with(keyspace, lanes);
            let mut first_tx = 0u64;
            for (sn, &count) in counts.iter().enumerate() {
                let block = exec_block(sn as u64, first_tx, count);
                first_tx += count as u64;
                let out = p.execute(sn as u64, &block);
                prop_assert_eq!(out, ExecOutcome::Applied { txs: count as u64 });
            }
            if let Some(r) = &reference {
                prop_assert_eq!(
                    p.state_root(), r.state_root(),
                    "{} lanes diverged from 1 lane", lanes
                );
                prop_assert_eq!(p.lane_roots(), r.lane_roots());
                prop_assert_eq!(p.executed_txs(), r.executed_txs());
            } else {
                reference = Some(p);
            }
        }
        // Snapshot → restore round-trips the lane-root vector
        // byte-identically.
        let mut p = reference.unwrap();
        p.checkpoint(0, vec![0; 4]);
        let snap = p.latest_snapshot().unwrap();
        prop_assert_eq!(&snap.lane_roots, &p.lane_roots());
        let decoded = ladon::state::Snapshot::decode(&snap.encode()).expect("decode");
        prop_assert_eq!(&decoded.lane_roots, &snap.lane_roots);
        prop_assert!(decoded.verify());
        let restored = ExecutionPipeline::from_parts(Some(&snap.encode()), &[], keyspace);
        prop_assert_eq!(restored.lane_roots(), p.lane_roots());
        prop_assert_eq!(restored.state_root(), p.state_root());
    }

    /// Chunked wire form ≡ monolithic: for arbitrary executed states the
    /// snapshot splits into one chunk per Merkle lane, every chunk
    /// verifies against its lane root and round-trips encode/decode, and
    /// reassembly — from the full chunk set, or from *delta* chunks plus
    /// lanes reconstructed out of an older local state whose roots
    /// already match — reproduces the monolithic snapshot byte for byte.
    #[test]
    fn chunked_snapshot_roundtrips_byte_identically(
        counts in proptest::collection::vec(0u32..96, 2..24),
        keyspace in 64u32..1024,
        cut in any::<usize>(),
    ) {
        let cut = cut % counts.len();
        let mut full = ExecutionPipeline::in_memory_with(keyspace, 4);
        let mut older = ExecutionPipeline::in_memory_with(keyspace, 4);
        let mut first_tx = 0u64;
        for (sn, &count) in counts.iter().enumerate() {
            let block = exec_block(sn as u64, first_tx, count);
            first_tx += count as u64;
            full.execute(sn as u64, &block);
            if sn <= cut {
                older.execute(sn as u64, &block);
            }
        }
        full.checkpoint(0, vec![0; 4]);
        let snap = full.latest_snapshot().unwrap();
        let (head, chunks) = snap.split();
        prop_assert_eq!(chunks.len(), MERKLE_LANES as usize);
        prop_assert!(head.verify());
        for chunk in &chunks {
            prop_assert!(chunk.verify(), "lane {} chunk failed verify", chunk.lane);
            let decoded = SnapshotChunk::decode(&chunk.encode()).expect("chunk decode");
            prop_assert_eq!(decoded.encode(), chunk.encode());
        }
        let rebuilt = Snapshot::assemble(head.clone(), &chunks).expect("assemble");
        prop_assert_eq!(rebuilt.encode(), snap.encode());

        // Delta reassembly: ship only the changed lanes; every other
        // lane comes from the older state's local chunks.
        let delta = delta_lanes(&snap.lane_roots, &older.lane_roots());
        let mut parts = older.lane_chunks();
        parts.extend(chunks.iter().filter(|c| delta.contains(&c.lane)).cloned());
        let rebuilt = Snapshot::assemble(head, &parts).expect("delta assemble");
        prop_assert_eq!(rebuilt.encode(), snap.encode());
    }

    /// The dependency-DAG wave executor is equivalent to the sequential
    /// in-order reference executor: for random transfer/cross-lane
    /// workloads (derived ops over a random keyspace, plus a crafted
    /// chain where an op must read a same-block cross-lane credit), the
    /// final state and ALL 64 lane roots are byte-identical at worker
    /// counts {1, 2, 4, 8} — and the scheduler counters are
    /// worker-count invariant.
    #[test]
    fn dag_executor_matches_sequential_reference(
        ids in proptest::collection::vec(any::<u64>(), 1..1400),
        keyspace in 8u32..256,
        seeds in proptest::collection::vec((any::<u32>(), 1u64..10_000), 0..12),
    ) {
        let mut ops: Vec<TxOp> = Vec::new();
        for &(k, v) in &seeds {
            ops.push(TxOp::Put { key: k % keyspace, value: v });
        }
        for &id in &ids {
            ops.push(TxOp::for_id(TxId(id), keyspace));
        }
        // Read-your-writes chain: a → b → c across three distinct lanes,
        // where b starts from whatever the random prefix left it — the
        // b → c transfer can only move the a → b credit if the executor
        // orders the cross-lane dependency within the batch.
        let a = 0u32;
        let b = (1..keyspace).find(|&k| lane_of(k) != lane_of(a));
        let c = b.and_then(|b| {
            (1..keyspace).find(|&k| lane_of(k) != lane_of(a) && lane_of(k) != lane_of(b))
        });
        if let (Some(b), Some(c)) = (b, c) {
            ops.push(TxOp::Put { key: a, value: 77 });
            ops.push(TxOp::Transfer { from: a, to: b, amount: 77 });
            ops.push(TxOp::Transfer { from: b, to: c, amount: u64::MAX });
        }

        let mut reference = KvState::new();
        let mut ref_fx = ladon::state::ExecEffects::default();
        for op in &ops {
            ref_fx.absorb(reference.apply(op));
        }
        let ref_lane_roots = reference.lane_roots();
        let ref_entries: Vec<(u32, u64)> = reference.entries().collect();

        let mut shapes = Vec::new();
        for workers in [1u32, 2, 4, 8] {
            let mut s = KvState::with_exec_lanes(workers);
            let out = s.apply_batch(&ops);
            prop_assert_eq!(out.effects, ref_fx, "workers={}", workers);
            prop_assert_eq!(
                s.lane_roots(), ref_lane_roots.clone(),
                "workers={}: all 64 lane roots must match the sequential reference",
                workers
            );
            prop_assert_eq!(s.root(), reference.root(), "workers={}", workers);
            prop_assert_eq!(
                s.entries().collect::<Vec<_>>(), ref_entries.clone(),
                "workers={}", workers
            );
            shapes.push((out.waves, out.max_wave_ops, out.cross_lane_edges));
        }
        prop_assert!(
            shapes.windows(2).all(|w| w[0] == w[1]),
            "scheduler counters must be worker-count invariant: {:?}",
            shapes
        );
    }

    /// Bucket rotation is always a permutation of instances.
    #[test]
    fn bucket_rotation_is_permutation(m in 1usize..32, rotations in 0usize..64) {
        let mut rb = ladon::core::RotatingBuckets::new(m);
        for _ in 0..rotations {
            rb.rotate();
        }
        let mut targets: Vec<u32> = (0..m as u32).map(|b| rb.instance_of(b).0).collect();
        targets.sort_unstable();
        prop_assert_eq!(targets, (0..m as u32).collect::<Vec<_>>());
    }
}

proptest! {
    // Each case does real file I/O in its own scratch dir; fewer, fatter
    // cases than the in-memory properties.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Torn-write tolerance of the segmented WAL: truncate *or* corrupt
    /// one on-disk segment file at an arbitrary byte offset, and recovery
    /// must (a) never panic, (b) stop at the longest valid replayable
    /// prefix — never below the snapshot, never above the pre-corruption
    /// head — (c) produce byte-identical roots at 1 and 4 workers from
    /// the same damaged artifacts, and (d) match a clean in-memory
    /// re-execution of exactly the recovered prefix.
    #[test]
    fn torn_segment_write_recovers_longest_valid_prefix(
        counts in proptest::collection::vec(0u32..48, 4..20),
        cut in any::<usize>(),
        victim in any::<usize>(),
        offset in any::<usize>(),
        truncate in any::<bool>(),
    ) {
        let wal_opts = WalOptions { lane_groups: 4, segment_records: 3 };
        let dir = scratch_dir("torn");
        let _ = std::fs::remove_dir_all(&dir);
        let cut = cut % counts.len();
        let mut first_txs = Vec::with_capacity(counts.len());
        {
            let mut p =
                ExecutionPipeline::recover_opts(&dir, DEFAULT_KEYSPACE, 1, wal_opts).unwrap();
            let mut first_tx = 0u64;
            for (sn, &count) in counts.iter().enumerate() {
                first_txs.push(first_tx);
                let out = p.execute(sn as u64, &exec_block(sn as u64, first_tx, count));
                prop_assert_eq!(out, ExecOutcome::Applied { txs: count as u64 });
                first_tx += count as u64;
                if sn == cut {
                    p.checkpoint(0, vec![0; 4]);
                }
            }
            prop_assert_eq!(p.wal_write_failures(), 0);
        }
        let snap_applied = cut as u64 + 1;

        // Damage one segment file at an arbitrary offset: truncation
        // models a torn append mid-crash, a bit flip models media rot.
        let mut segs: Vec<std::path::PathBuf> = std::fs::read_dir(dir.join("wal"))
            .unwrap()
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "seg"))
            .collect();
        segs.sort();
        // A checkpoint on the last block compacts every segment away;
        // there is nothing to damage then and recovery is pure snapshot.
        if !segs.is_empty() {
            let victim_path = &segs[victim % segs.len()];
            let mut bytes = std::fs::read(victim_path).unwrap();
            if !bytes.is_empty() {
                let at = offset % bytes.len();
                if truncate {
                    bytes.truncate(at);
                } else {
                    bytes[at] ^= 0xff;
                }
                std::fs::write(victim_path, &bytes).unwrap();
            }
        }

        let r1 = ExecutionPipeline::recover_opts(&dir, DEFAULT_KEYSPACE, 1, wal_opts).unwrap();
        let r4 = ExecutionPipeline::recover_opts(&dir, DEFAULT_KEYSPACE, 4, wal_opts).unwrap();
        let applied = r1.applied();
        prop_assert!(
            (snap_applied..=counts.len() as u64).contains(&applied),
            "recovered applied {} outside [{}, {}]",
            applied, snap_applied, counts.len()
        );
        prop_assert_eq!(r4.applied(), applied);
        prop_assert_eq!(r4.state_root(), r1.state_root());
        prop_assert_eq!(r4.lane_roots(), r1.lane_roots());

        let mut reference = ExecutionPipeline::in_memory(DEFAULT_KEYSPACE);
        for sn in 0..applied {
            reference.execute(
                sn,
                &exec_block(sn, first_txs[sn as usize], counts[sn as usize]),
            );
        }
        prop_assert_eq!(r1.state_root(), reference.state_root());
        prop_assert_eq!(r1.executed_txs(), reference.executed_txs());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Group-commit equivalence: for ANY record sequence and ANY batch
    /// partition of it, executing through the batched path
    /// (`execute_batch`: stage → one flush barrier per batch → apply)
    /// and then recovering from the durable artifacts is byte-identical
    /// to per-record execution — roots, frontiers, and tx counts — at
    /// worker counts {1, 4}. The durable log a batched writer leaves
    /// behind must be indistinguishable from an unbatched one.
    #[test]
    fn batched_wal_recovers_identical_to_per_record(
        counts in proptest::collection::vec(0u32..48, 1..20),
        splits in proptest::collection::vec(1usize..6, 1..12),
        mid_checkpoint in any::<bool>(),
    ) {
        let wal_opts = WalOptions { lane_groups: 4, segment_records: 3 };
        // Per-record reference, in memory.
        let mut reference = ExecutionPipeline::in_memory(DEFAULT_KEYSPACE);
        let mut first_txs = Vec::with_capacity(counts.len());
        let mut first_tx = 0u64;
        for (sn, &count) in counts.iter().enumerate() {
            first_txs.push(first_tx);
            reference.execute(sn as u64, &exec_block(sn as u64, first_tx, count));
            first_tx += count as u64;
        }
        // Batched run over a real segmented on-disk WAL, the partition
        // drawn from `splits` (cyclic chunk sizes).
        let dir = scratch_dir("group-commit-eq");
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut p =
                ExecutionPipeline::recover_opts(&dir, DEFAULT_KEYSPACE, 1, wal_opts).unwrap();
            let mut at = 0usize;
            let mut si = 0usize;
            while at < counts.len() {
                let take = splits[si % splits.len()].min(counts.len() - at);
                si += 1;
                let batch: Vec<(u64, ladon::types::Block)> = (at..at + take)
                    .map(|sn| {
                        (
                            sn as u64,
                            exec_block(sn as u64, first_txs[sn], counts[sn]),
                        )
                    })
                    .collect();
                for out in p.execute_batch(&batch) {
                    prop_assert!(matches!(out, ExecOutcome::Applied { .. }));
                }
                // Optionally checkpoint mid-stream: compaction must
                // compose with batched appends exactly as with singles.
                if mid_checkpoint && at == 0 {
                    p.checkpoint(0, vec![0; 4]);
                }
                at += take;
            }
            prop_assert_eq!(p.wal_write_failures(), 0);
            prop_assert_eq!(p.state_root(), reference.state_root());
        }
        // Recovery from the batched artifacts, at both worker counts.
        for lanes in [1u32, 4] {
            let r =
                ExecutionPipeline::recover_opts(&dir, DEFAULT_KEYSPACE, lanes, wal_opts).unwrap();
            prop_assert_eq!(r.applied(), reference.applied(), "lanes={}", lanes);
            prop_assert_eq!(r.executed_txs(), reference.executed_txs());
            prop_assert_eq!(r.state_root(), reference.state_root(), "lanes={}", lanes);
            prop_assert_eq!(r.lane_roots(), reference.lane_roots());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// ---------------------------------------------------------------------
// Observability determinism: the run-level metrics snapshot is part of
// the deterministic surface. Two experiments with the same seed must
// render byte-identical deterministic JSON (only `wall_*` metrics — the
// host-timing split — may differ between runs).
// ---------------------------------------------------------------------

#[test]
fn same_seed_runs_render_byte_identical_metrics_snapshots() {
    use ladon::types::{NetEnv, ProtocolKind};
    use ladon::workload::{run_experiment, ExperimentConfig};

    let cfg = ExperimentConfig::new(ProtocolKind::LadonPbft, 4, NetEnv::Lan)
        .duration_secs(1.5)
        .warmup_secs(1.0)
        .with_seed(42);
    let a = run_experiment(&cfg);
    let b = run_experiment(&cfg);

    let (da, db) = (
        a.metrics.deterministic_json(),
        b.metrics.deterministic_json(),
    );
    assert!(
        da.contains("node.confirmed_blocks"),
        "snapshot must carry node counters: {da}"
    );
    assert!(
        da.contains("trace."),
        "snapshot must carry lifecycle trace metrics: {da}"
    );
    assert_eq!(da, db, "same-seed runs must render identical snapshots");

    // A different seed must actually change the deterministic surface
    // (the gate is not vacuously comparing empty documents).
    let c = run_experiment(&cfg.clone().with_seed(43));
    assert_ne!(
        da,
        c.metrics.deterministic_json(),
        "a different seed should perturb the metrics snapshot"
    );
}
