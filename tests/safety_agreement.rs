//! G-Agreement and G-Totality across protocol compositions (§3.3):
//! honest replicas' global logs must agree at every shared index, and
//! confirmed blocks must eventually be confirmed everywhere.

mod common;

use common::{cluster, ClusterOpts};
use ladon::types::ProtocolKind;

fn agreement_for(protocol: ProtocolKind, n: usize, secs: f64) {
    let mut c = cluster(ClusterOpts {
        protocol,
        n,
        submit_until_s: secs - 1.0,
        ..Default::default()
    });
    c.run_secs(secs);
    let honest: Vec<usize> = (0..n).collect();
    c.assert_agreement(&honest);
    assert!(
        c.node(0).metrics.confirms.len() > 5,
        "{protocol:?}: too few confirmations to be meaningful"
    );
}

#[test]
fn ladon_pbft_agreement() {
    agreement_for(ProtocolKind::LadonPbft, 4, 6.0);
}

#[test]
fn ladon_opt_pbft_agreement() {
    agreement_for(ProtocolKind::LadonOptPbft, 4, 6.0);
}

#[test]
fn iss_pbft_agreement() {
    agreement_for(ProtocolKind::IssPbft, 4, 6.0);
}

#[test]
fn rcc_pbft_agreement() {
    agreement_for(ProtocolKind::RccPbft, 4, 6.0);
}

#[test]
fn mir_pbft_agreement() {
    agreement_for(ProtocolKind::MirPbft, 4, 6.0);
}

#[test]
fn dqbft_agreement() {
    agreement_for(ProtocolKind::DqbftPbft, 4, 6.0);
}

#[test]
fn ladon_hotstuff_agreement() {
    agreement_for(ProtocolKind::LadonHotStuff, 4, 6.0);
}

#[test]
fn iss_hotstuff_agreement() {
    agreement_for(ProtocolKind::IssHotStuff, 4, 6.0);
}

#[test]
fn agreement_survives_straggler_and_larger_cluster() {
    let mut c = cluster(ClusterOpts {
        protocol: ProtocolKind::LadonPbft,
        n: 7,
        stragglers: vec![2],
        submit_until_s: 5.0,
        ..Default::default()
    });
    c.run_secs(6.0);
    c.assert_agreement(&(0..7).collect::<Vec<_>>());
}

#[test]
fn totality_logs_converge_after_quiescence() {
    // After submission stops and the network drains, every replica's log
    // has the same length (G-Totality for the finished prefix).
    let mut c = cluster(ClusterOpts {
        protocol: ProtocolKind::LadonPbft,
        n: 4,
        submit_until_s: 3.0,
        ..Default::default()
    });
    c.run_secs(10.0);
    let lens: Vec<usize> = (0..4).map(|r| c.confirmed_log(r).len()).collect();
    let min = *lens.iter().min().unwrap();
    let max = *lens.iter().max().unwrap();
    assert!(min > 0);
    // Epoch-boundary blocks may trail by at most one wave.
    assert!(max - min <= c.sys.m, "logs failed to converge: {lens:?}");
}
