//! Execution-layer integration tests: deterministic state machine
//! replication on top of dynamic global ordering.
//!
//! The core claim: at every stable checkpoint, all honest replicas'
//! execution state roots are identical — under healthy runs, under
//! stragglers, and across a crash + restart that recovers from the
//! durable snapshot + WAL pair.

mod common;

use common::{cluster, ClusterOpts};
use ladon::core::{Behavior, MultiBftNode, NodeConfig};
use ladon::state::ExecutionPipeline;
use ladon::types::{Digest, ProtocolKind};
use std::collections::BTreeMap;

/// Collects `(epoch → roots reported across replicas)` from a cluster.
fn roots_by_epoch(c: &common::TestCluster, replicas: &[usize]) -> BTreeMap<u64, Vec<Digest>> {
    let mut out: BTreeMap<u64, Vec<Digest>> = BTreeMap::new();
    for &r in replicas {
        for &(_, epoch, root) in &c.node(r).metrics.state_roots {
            out.entry(epoch).or_default().push(root);
        }
    }
    out
}

/// Asserts every epoch reported by at least two of `replicas` has one
/// unanimous root, and returns how many such epochs there were.
fn assert_root_agreement(c: &common::TestCluster, replicas: &[usize]) -> usize {
    let by_epoch = roots_by_epoch(c, replicas);
    let mut checked = 0;
    for (epoch, roots) in &by_epoch {
        if roots.len() < 2 {
            continue;
        }
        checked += 1;
        assert!(
            roots.windows(2).all(|w| w[0] == w[1]),
            "state roots diverge at epoch {epoch}: {roots:?}"
        );
    }
    checked
}

#[test]
fn honest_replicas_agree_on_state_roots_at_every_checkpoint() {
    let mut c = cluster(ClusterOpts {
        protocol: ProtocolKind::LadonPbft,
        n: 4,
        epoch_length: Some(16),
        submit_until_s: 10.0,
        ..Default::default()
    });
    c.run_secs(15.0);

    // Real execution happened everywhere.
    for r in 0..4 {
        let node = c.node(r);
        assert!(
            node.metrics.executed_txs > 0,
            "replica {r} executed nothing"
        );
        assert_eq!(
            node.metrics.root_conflicts, 0,
            "replica {r} saw a conflicting checkpoint quorum"
        );
    }
    // Multiple epochs checkpointed, with unanimous roots at each.
    let checked = assert_root_agreement(&c, &[0, 1, 2, 3]);
    assert!(
        checked >= 2,
        "need ≥ 2 comparable checkpoints, got {checked}"
    );
    // Checkpoints carry snapshots: the WAL is compacted behind them.
    let node = c.node(0);
    assert!(node.exec.latest_snapshot().is_some());
    c.assert_agreement(&[0, 1, 2, 3]);
}

/// Under LadonHotStuff, snapshots are state-only: the commit height at
/// epoch completion depends on local dummy-commit timing, so the frontier
/// is excluded from the quorum-signed manifest (empty) rather than signed
/// nondeterministically. Checkpoint quorums must still form — epochs
/// advance, roots agree, no conflicts — and the captured snapshots must
/// carry no consensus frontier.
#[test]
fn hotstuff_replicas_agree_on_state_roots_with_state_only_snapshots() {
    let mut c = cluster(ClusterOpts {
        protocol: ProtocolKind::LadonHotStuff,
        n: 4,
        epoch_length: Some(16),
        submit_until_s: 10.0,
        ..Default::default()
    });
    c.run_secs(15.0);

    for r in 0..4 {
        let node = c.node(r);
        assert!(
            node.metrics.executed_txs > 0,
            "replica {r} executed nothing"
        );
        assert_eq!(
            node.metrics.root_conflicts, 0,
            "replica {r} saw a conflicting checkpoint quorum — the signed \
             manifest must not include timing-dependent HotStuff heights"
        );
        assert_eq!(node.metrics.exec_gaps, 0, "replica {r} hit an exec gap");
        if let Some(snap) = node.exec.latest_snapshot() {
            assert!(
                snap.frontier.is_empty(),
                "HotStuff snapshots must be state-only (empty frontier)"
            );
        }
    }
    let checked = assert_root_agreement(&c, &[0, 1, 2, 3]);
    assert!(
        checked >= 1,
        "HotStuff epochs must still checkpoint, got {checked}"
    );
    assert!(
        c.node(0).metrics.epochs.len() > 1,
        "the run must cross an epoch boundary to be meaningful"
    );
}

#[test]
fn straggler_cluster_still_agrees_on_state_roots() {
    let mut c = cluster(ClusterOpts {
        protocol: ProtocolKind::LadonPbft,
        n: 4,
        stragglers: vec![1],
        straggler_k: 10.0,
        epoch_length: Some(16),
        submit_until_s: 25.0,
        ..Default::default()
    });
    c.run_secs(30.0);

    let checked = assert_root_agreement(&c, &[0, 1, 2, 3]);
    assert!(
        checked >= 1,
        "a straggler must not stop epochs from checkpointing"
    );
    // The straggler executes the same log as everyone else.
    assert!(c.node(1).metrics.executed_txs > 0);
    c.assert_agreement(&[0, 1, 2, 3]);
}

/// The crash/restart scenario the execution subsystem exists for: replica
/// 3 crashes mid-run; a new process recovers its execution state from the
/// durable snapshot + WAL pair (byte-identical root), rejoins via state
/// transfer, and ends the run agreeing with the cluster.
#[test]
fn restarted_replica_recovers_via_snapshot_and_wal_replay() {
    let mut c = cluster(ClusterOpts {
        protocol: ProtocolKind::LadonPbft,
        n: 4,
        epoch_length: Some(16),
        crash: Some((3, 6.0)),
        submit_until_s: 30.0,
        ..Default::default()
    });
    c.run_secs(10.0);

    // "Disk" contents at the moment of the crash: the snapshot from the
    // last completed epoch plus the WAL tail past it.
    let crashed = c.node(3);
    let pre_crash_root = crashed.exec.state_root();
    let pre_crash_applied = crashed.exec.applied();
    assert!(
        pre_crash_applied > 0,
        "the replica must have executed before crashing"
    );
    let (snap_bytes, wal_bytes) = crashed.exec.export_parts();

    // Recovery: snapshot install + WAL replay reproduces the exact state.
    let recovered = ExecutionPipeline::from_parts(
        snap_bytes.as_deref(),
        &wal_bytes,
        ladon::state::DEFAULT_KEYSPACE,
    );
    assert_eq!(recovered.applied(), pre_crash_applied);
    assert_eq!(
        recovered.state_root(),
        pre_crash_root,
        "snapshot + WAL replay must reproduce the pre-crash root"
    );

    // Restart the process: same replica id, recovered pipeline, no crash.
    let node = MultiBftNode::with_execution(
        NodeConfig {
            sys: c.sys.clone(),
            protocol: c.protocol,
            me: ladon::types::ReplicaId(3),
            registry: c.registry.clone(),
            behavior: Behavior::default(),
            sample_interval: None,
        },
        recovered,
    );
    c.engine.restart_actor(3, Box::new(node));
    c.run_secs(55.0);

    // The restarted replica detected its lag and resynced.
    let r3 = c.node(3);
    assert!(
        r3.metrics.sync_requests > 0,
        "restarted replica never asked for sync"
    );
    assert!(
        r3.metrics.sync_installed > 0 || r3.metrics.snapshot_installs > 0,
        "nothing was installed from peers"
    );
    // Execution moved past the recovered frontier.
    assert!(
        r3.exec.applied() > pre_crash_applied,
        "execution stalled at the recovered frontier ({})",
        pre_crash_applied
    );
    // It rejoined the epoch schedule and agrees on every comparable root.
    assert_eq!(
        r3.epoch(),
        c.node(0).epoch(),
        "restarted replica must reach the cluster's epoch"
    );
    assert_root_agreement(&c, &[0, 1, 2, 3]);
    c.assert_agreement(&[0, 1, 2]);
}

/// Worst-case restart: the replica lost its disk too (fresh execution
/// pipeline, applied = 0). Peers serve their latest snapshot with its
/// quorum-signed stable checkpoint; the replica installs it, fast-forwards
/// its state machine and consensus intake past the snapshotted history,
/// and rejoins without re-executing from genesis.
#[test]
fn disk_loss_recovers_via_peer_snapshot_install() {
    let mut c = cluster(ClusterOpts {
        protocol: ProtocolKind::LadonPbft,
        n: 4,
        epoch_length: Some(16),
        crash: Some((3, 6.0)),
        submit_until_s: 30.0,
        ..Default::default()
    });
    c.run_secs(12.0);
    let healthy_applied = c.node(0).exec.applied();
    assert!(healthy_applied > 0);

    // Fresh node, empty pipeline: nothing survived the crash.
    let node = MultiBftNode::new(NodeConfig {
        sys: c.sys.clone(),
        protocol: c.protocol,
        me: ladon::types::ReplicaId(3),
        registry: c.registry.clone(),
        behavior: Behavior::default(),
        sample_interval: None,
    });
    c.engine.restart_actor(3, Box::new(node));
    c.run_secs(55.0);

    let r3 = c.node(3);
    assert!(
        r3.metrics.snapshot_installs > 0,
        "a from-zero replica must recover via a peer snapshot, not log replay"
    );
    assert!(r3.exec.applied() >= healthy_applied);
    assert_eq!(r3.epoch(), c.node(0).epoch());
    assert_eq!(r3.metrics.root_conflicts, 0);
    assert_root_agreement(&c, &[0, 1, 2, 3]);
}
