//! Execution-layer integration tests: deterministic state machine
//! replication on top of dynamic global ordering.
//!
//! The core claim: at every stable checkpoint, all honest replicas'
//! execution state roots are identical — under healthy runs, under
//! stragglers, and across a crash + restart that recovers from the
//! durable snapshot + WAL pair. With the sharded execution lanes the
//! claim is strengthened to a **fault-scenario matrix**: every fault
//! scenario runs at ≥ 2 execution-lane counts, and because lane workers
//! never affect observable state, the runs must produce *identical*
//! final roots.

mod common;

use common::{cluster, ClusterOpts, TestCluster};
use ladon::core::{Behavior, MultiBftNode, NodeConfig, SyncRequest};
use ladon::state::{
    CommitWal, ExecutionPipeline, FaultBackend, FileBackend, WalOptions, WalRecord,
    DEFAULT_KEYSPACE,
};
use ladon::types::{Digest, ProtocolKind, Round};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// The lane counts every fault scenario in the matrix runs at (4 is the
/// config default; 1 is the degenerate sequential case the sharded roots
/// must match bit-for-bit).
const LANE_MATRIX: [u32; 2] = [1, 4];

/// Collects `(epoch → roots reported across replicas)` from a cluster.
fn roots_by_epoch(c: &TestCluster, replicas: &[usize]) -> BTreeMap<u64, Vec<Digest>> {
    let mut out: BTreeMap<u64, Vec<Digest>> = BTreeMap::new();
    for &r in replicas {
        for &(_, epoch, root) in &c.node(r).metrics.state_roots {
            out.entry(epoch).or_default().push(root);
        }
    }
    out
}

/// Asserts every epoch reported by at least two of `replicas` has one
/// unanimous root, and returns how many such epochs there were.
fn assert_root_agreement(c: &TestCluster, replicas: &[usize]) -> usize {
    let by_epoch = roots_by_epoch(c, replicas);
    let mut checked = 0;
    for (epoch, roots) in &by_epoch {
        if roots.len() < 2 {
            continue;
        }
        checked += 1;
        assert!(
            roots.windows(2).all(|w| w[0] == w[1]),
            "state roots diverge at epoch {epoch}: {roots:?}"
        );
    }
    checked
}

/// Asserts one fault scenario's per-lane-count final roots are identical:
/// execution lanes are a parallelism knob, never a semantic one, even
/// under faults.
fn assert_lane_invariant(scenario: &str, roots: &[(u32, Digest)]) {
    assert!(
        roots.windows(2).all(|w| w[0].1 == w[1].1),
        "{scenario}: final roots differ across lane counts: {roots:?}"
    );
}

#[test]
fn honest_replicas_agree_on_state_roots_at_every_checkpoint() {
    let mut c = cluster(ClusterOpts {
        protocol: ProtocolKind::LadonPbft,
        n: 4,
        epoch_length: Some(16),
        submit_until_s: 10.0,
        ..Default::default()
    });
    c.run_secs(15.0);

    // Real execution happened everywhere.
    for r in 0..4 {
        let node = c.node(r);
        assert!(
            node.metrics.executed_txs > 0,
            "replica {r} executed nothing"
        );
        assert_eq!(
            node.metrics.root_conflicts, 0,
            "replica {r} saw a conflicting checkpoint quorum"
        );
    }
    // Multiple epochs checkpointed, with unanimous roots at each.
    let checked = assert_root_agreement(&c, &[0, 1, 2, 3]);
    assert!(
        checked >= 2,
        "need ≥ 2 comparable checkpoints, got {checked}"
    );
    // Silent durability failures must be loud: every replica's WAL
    // (appends, segment rolls, compaction rotations) wrote cleanly — and
    // the group-commit I/O counters surface real work: fsync barriers
    // were issued (durability is not a no-op) and bytes landed.
    // (`fig_wal_group_commit` gates the amortization itself with exact
    // counts.)
    for r in 0..4 {
        let m = &c.node(r).metrics;
        assert_eq!(
            m.wal_write_failures, 0,
            "replica {r} reported failed durable WAL writes"
        );
        assert!(m.wal_fsyncs > 0, "replica {r} reported no fsync barriers");
        assert!(
            m.wal_bytes_written > 0,
            "replica {r} reported no WAL bytes written"
        );
    }
    // Checkpoints carry snapshots: the WAL is compacted behind them, the
    // manifest records the full lane-root vector, and the lane ledger
    // accounts every executed op to a lane.
    let node = c.node(0);
    let snap = node.exec.latest_snapshot().expect("checkpointed");
    assert_eq!(
        snap.lane_roots.len(),
        ladon::state::MERKLE_LANES as usize,
        "snapshot must carry the complete lane-root vector"
    );
    assert_eq!(
        node.exec.lane_ops().iter().sum::<u64>(),
        node.metrics.executed_txs,
        "lane ledger must account every executed op"
    );
    c.assert_agreement(&[0, 1, 2, 3]);
}

/// Under LadonHotStuff, snapshots are state-only: the commit height at
/// epoch completion depends on local dummy-commit timing, so the frontier
/// is excluded from the quorum-signed manifest (empty) rather than signed
/// nondeterministically. Checkpoint quorums must still form — epochs
/// advance, roots agree, no conflicts — and the captured snapshots must
/// carry no consensus frontier.
#[test]
fn hotstuff_replicas_agree_on_state_roots_with_state_only_snapshots() {
    let mut c = cluster(ClusterOpts {
        protocol: ProtocolKind::LadonHotStuff,
        n: 4,
        epoch_length: Some(16),
        submit_until_s: 10.0,
        ..Default::default()
    });
    c.run_secs(15.0);

    for r in 0..4 {
        let node = c.node(r);
        assert!(
            node.metrics.executed_txs > 0,
            "replica {r} executed nothing"
        );
        assert_eq!(
            node.metrics.root_conflicts, 0,
            "replica {r} saw a conflicting checkpoint quorum — the signed \
             manifest must not include timing-dependent HotStuff heights"
        );
        assert_eq!(node.metrics.exec_gaps, 0, "replica {r} hit an exec gap");
        if let Some(snap) = node.exec.latest_snapshot() {
            assert!(
                snap.frontier.is_empty(),
                "HotStuff snapshots must be state-only (empty frontier)"
            );
        }
    }
    let checked = assert_root_agreement(&c, &[0, 1, 2, 3]);
    assert!(
        checked >= 1,
        "HotStuff epochs must still checkpoint, got {checked}"
    );
    assert!(
        c.node(0).metrics.epochs.len() > 1,
        "the run must cross an epoch boundary to be meaningful"
    );
}

// ---------------------------------------------------------------------
// Fault-scenario matrix: every scenario below runs at each lane count in
// LANE_MATRIX and returns a final root for the cross-lane-count
// invariance check (the simulation is deterministic per seed, and lane
// workers must not perturb any observable state).
// ---------------------------------------------------------------------

/// Straggler catch-up: one replica proposes at 1/10 rate with empty
/// batches; epochs must still checkpoint with unanimous roots.
fn straggler_catch_up_at(lanes: u32) -> Digest {
    let mut c = cluster(ClusterOpts {
        protocol: ProtocolKind::LadonPbft,
        n: 4,
        stragglers: vec![1],
        straggler_k: 10.0,
        epoch_length: Some(16),
        submit_until_s: 25.0,
        exec_lanes: Some(lanes),
        ..Default::default()
    });
    c.run_secs(30.0);

    let checked = assert_root_agreement(&c, &[0, 1, 2, 3]);
    assert!(
        checked >= 1,
        "lanes={lanes}: a straggler must not stop epochs from checkpointing"
    );
    // The straggler executes the same log as everyone else.
    assert!(c.node(1).metrics.executed_txs > 0);
    assert_eq!(c.node(0).exec.exec_lanes(), lanes);
    // A straggler is slow to *propose*, not to apply: it never lags the
    // snapshot-serving threshold, so no replica ships snapshot chunks —
    // the minimum-gap policy holds at the serve counters.
    for r in 0..4 {
        let m = &c.node(r).metrics;
        assert_eq!(
            (
                m.snapshots_served,
                m.snapshot_chunks_served,
                m.snapshot_bytes_served
            ),
            (0, 0, 0),
            "lanes={lanes}: replica {r} served snapshot chunks in a \
             cluster where nobody's applied frontier lagged"
        );
    }
    c.assert_agreement(&[0, 1, 2, 3]);
    c.node(0).exec.state_root()
}

#[test]
fn straggler_cluster_still_agrees_on_state_roots_across_lane_counts() {
    let roots: Vec<(u32, Digest)> = LANE_MATRIX
        .iter()
        .map(|&l| (l, straggler_catch_up_at(l)))
        .collect();
    assert_lane_invariant("straggler catch-up", &roots);
}

/// Crash mid-epoch + restart: replica 3 crashes at 6 s; a new process
/// recovers its execution state from the durable snapshot + WAL pair
/// (byte-identical root, lane-root vector included), rejoins via state
/// transfer, and ends the run agreeing with the cluster.
fn crash_restart_mid_epoch_at(lanes: u32) -> Digest {
    let mut c = cluster(ClusterOpts {
        protocol: ProtocolKind::LadonPbft,
        n: 4,
        epoch_length: Some(16),
        crash: Some((3, 6.0)),
        submit_until_s: 30.0,
        exec_lanes: Some(lanes),
        ..Default::default()
    });
    c.run_secs(10.0);

    // "Disk" contents at the moment of the crash: the snapshot from the
    // last completed epoch plus the WAL tail past it.
    let crashed = c.node(3);
    let pre_crash_root = crashed.exec.state_root();
    let pre_crash_lane_roots = crashed.exec.lane_roots();
    let pre_crash_applied = crashed.exec.applied();
    assert!(
        pre_crash_applied > 0,
        "lanes={lanes}: the replica must have executed before crashing"
    );
    let (snap_bytes, wal_bytes) = crashed.exec.export_parts();

    // Recovery: snapshot install + WAL replay reproduces the exact state,
    // at *every* lane count (recover with the other lane count too).
    for recover_lanes in LANE_MATRIX {
        let recovered = ExecutionPipeline::from_parts_with(
            snap_bytes.as_deref(),
            &wal_bytes,
            c.sys.exec_keyspace,
            recover_lanes,
        );
        assert_eq!(recovered.applied(), pre_crash_applied);
        assert_eq!(
            recovered.state_root(),
            pre_crash_root,
            "lanes={lanes}→{recover_lanes}: snapshot + WAL replay must \
             reproduce the pre-crash root"
        );
        assert_eq!(
            recovered.lane_roots(),
            pre_crash_lane_roots,
            "lanes={lanes}→{recover_lanes}: recovered lane-root vector \
             must be byte-identical"
        );
    }

    // Restart the process: same replica id, recovered pipeline, no crash.
    let recovered = ExecutionPipeline::from_parts_with(
        snap_bytes.as_deref(),
        &wal_bytes,
        c.sys.exec_keyspace,
        lanes,
    );
    let node = MultiBftNode::with_execution(
        NodeConfig {
            sys: c.sys.clone(),
            protocol: c.protocol,
            me: ladon::types::ReplicaId(3),
            registry: c.registry.clone(),
            behavior: Behavior::default(),
            sample_interval: None,
        },
        recovered,
    );
    c.engine.restart_actor(3, Box::new(node));
    c.run_secs(55.0);

    // The restarted replica detected its lag and resynced.
    let r3 = c.node(3);
    assert!(
        r3.metrics.sync_requests > 0,
        "lanes={lanes}: restarted replica never asked for sync"
    );
    assert!(
        r3.metrics.sync_installed > 0 || r3.metrics.snapshot_installs > 0,
        "lanes={lanes}: nothing was installed from peers"
    );
    // Execution moved past the recovered frontier.
    assert!(
        r3.exec.applied() > pre_crash_applied,
        "lanes={lanes}: execution stalled at the recovered frontier ({pre_crash_applied})"
    );
    // It rejoined the epoch schedule and agrees on every comparable root.
    assert_eq!(
        r3.epoch(),
        c.node(0).epoch(),
        "lanes={lanes}: restarted replica must reach the cluster's epoch"
    );
    assert_root_agreement(&c, &[0, 1, 2, 3]);
    c.assert_agreement(&[0, 1, 2]);
    c.node(0).exec.state_root()
}

#[test]
fn restarted_replica_recovers_via_snapshot_and_wal_replay_across_lane_counts() {
    let roots: Vec<(u32, Digest)> = LANE_MATRIX
        .iter()
        .map(|&l| (l, crash_restart_mid_epoch_at(l)))
        .collect();
    assert_lane_invariant("crash-restart mid-epoch", &roots);
}

/// Worst-case restart: the replica lost its disk too (fresh execution
/// pipeline, applied = 0). Peers serve their latest snapshot with its
/// quorum-signed stable checkpoint; the replica installs it, fast-forwards
/// its state machine and consensus intake past the snapshotted history,
/// and rejoins without re-executing from genesis.
fn disk_loss_at(lanes: u32) -> Digest {
    let mut c = cluster(ClusterOpts {
        protocol: ProtocolKind::LadonPbft,
        n: 4,
        epoch_length: Some(16),
        crash: Some((3, 6.0)),
        submit_until_s: 30.0,
        exec_lanes: Some(lanes),
        ..Default::default()
    });
    c.run_secs(12.0);
    let healthy_applied = c.node(0).exec.applied();
    assert!(healthy_applied > 0);

    // Fresh node, empty pipeline: nothing survived the crash.
    let node = MultiBftNode::new(NodeConfig {
        sys: c.sys.clone(),
        protocol: c.protocol,
        me: ladon::types::ReplicaId(3),
        registry: c.registry.clone(),
        behavior: Behavior::default(),
        sample_interval: None,
    });
    c.engine.restart_actor(3, Box::new(node));
    c.run_secs(55.0);

    let r3 = c.node(3);
    assert!(
        r3.metrics.snapshot_installs > 0,
        "lanes={lanes}: a from-zero replica must recover via a peer \
         snapshot, not log replay"
    );
    // The fast-forwarded prefix is surfaced, not silent: the replica
    // skipped exactly the confirm records the snapshot covered.
    assert!(
        r3.metrics.skipped_sns > 0,
        "lanes={lanes}: a snapshot install on a from-zero replica must \
         report the fast-forwarded prefix as skipped sns"
    );
    assert!(r3.exec.applied() >= healthy_applied);
    assert_eq!(r3.epoch(), c.node(0).epoch());
    assert_eq!(r3.metrics.root_conflicts, 0);
    // Serve-side accounting: some peer shipped the snapshot head with
    // real chunk bytes behind the install counted above, and no replica's
    // snapshot store saw a decode failure along the way.
    let (served, chunks, bytes): (u64, u64, u64) = (0..3)
        .map(|r| {
            let m = &c.node(r).metrics;
            (
                m.snapshots_served,
                m.snapshot_chunks_served,
                m.snapshot_bytes_served,
            )
        })
        .fold((0, 0, 0), |a, b| (a.0 + b.0, a.1 + b.1, a.2 + b.2));
    assert!(
        served > 0 && chunks > 0 && bytes > 0,
        "lanes={lanes}: a from-zero install must show up in the peers' \
         serve counters (served={served} chunks={chunks} bytes={bytes})"
    );
    for r in 0..4 {
        assert_eq!(c.node(r).metrics.snapshot_decode_failures, 0);
    }
    assert_root_agreement(&c, &[0, 1, 2, 3]);
    c.node(0).exec.state_root()
}

#[test]
fn disk_loss_recovers_via_peer_snapshot_install_across_lane_counts() {
    let roots: Vec<(u32, Digest)> = LANE_MATRIX.iter().map(|&l| (l, disk_loss_at(l))).collect();
    assert_lane_invariant("disk loss + peer snapshot", &roots);
}

/// Snapshot serving minimum-gap policy: a replica one block behind the
/// responder's snapshot gets log entries, never a full-keyspace snapshot;
/// a deeply lagging replica gets the snapshot with its proving
/// checkpoint.
#[test]
fn one_block_behind_gets_log_sync_not_snapshot() {
    let mut c = cluster(ClusterOpts {
        protocol: ProtocolKind::LadonPbft,
        n: 4,
        epoch_length: Some(16),
        submit_until_s: 12.0,
        ..Default::default()
    });
    c.run_secs(15.0);

    let responder = c.node(0);
    let snap = responder
        .exec
        .latest_snapshot()
        .expect("responder must have checkpointed");
    assert!(snap.applied > 1, "need history to lag behind");
    let m = c.sys.m;

    // A requester one block behind the snapshot, with a near-tip commit
    // frontier (one round behind per instance — old rounds are pruned at
    // epoch boundaries, exactly like a real barely-behind replica's
    // request): log sync only.
    let near = SyncRequest {
        epoch: ladon::types::Epoch(responder.epoch()),
        applied: snap.applied - 1,
        frontier: responder
            .commit_frontier()
            .iter()
            .map(|r| Round(r.0.saturating_sub(1)))
            .collect(),
        lane_roots: Vec::new(),
        chunk_cursor: 0,
    };
    let resp = responder
        .build_sync_response(&near)
        .expect("log entries must still be served");
    assert!(
        resp.snapshot.is_none(),
        "a 1-block-behind replica must not be shipped a snapshot"
    );
    assert!(
        !resp.entries.is_empty(),
        "the near-frontier requester is repaired by log entries"
    );

    // A from-zero requester: lags by ≥ snapshot_min_lag, gets the
    // snapshot plus the checkpoint that proves it.
    assert!(
        snap.applied >= c.sys.snapshot_min_lag,
        "run too short for the policy threshold"
    );
    let deep = SyncRequest {
        epoch: ladon::types::Epoch(0),
        applied: 0,
        frontier: vec![Round(0); m],
        lane_roots: Vec::new(),
        chunk_cursor: 0,
    };
    let resp = responder
        .build_sync_response(&deep)
        .expect("a deep lagger must be served");
    let shipped = resp.snapshot.expect("deep lag must ship the snapshot head");
    assert_eq!(shipped.applied, snap.applied);
    assert!(shipped.verify(), "served head must self-verify");
    let cp = resp.checkpoint.expect("snapshot must come with its proof");
    assert_eq!(cp.state_root, shipped.root);
    // A from-zero advertisement differs on every lane: the served chunks
    // (deduplicated by root) must reassemble the snapshot byte-for-byte.
    assert_eq!(resp.chunks_remaining, 0, "default cap serves all 64 lanes");
    let rebuilt = ladon::state::Snapshot::assemble(shipped, &resp.chunks)
        .expect("full-delta chunk set must reassemble");
    assert_eq!(rebuilt.encode(), snap.encode());
}

// ---------------------------------------------------------------------
// Crash-during-compaction matrix: the WAL's atomic segment rotation is
// killed at *every* storage operation boundary, and recovery from the
// artifacts left behind must lose no committed block. Two levels:
// record-level over a raw CommitWal (exercising the straddler-rewrite
// window), and pipeline-level through a real checkpoint (snapshot +
// compaction), with recovery roots asserted byte-identical at worker
// counts {1, 4}.
// ---------------------------------------------------------------------

/// Storage that "loses power" after a budgeted number of mutating
/// operations: once the budget is exhausted, every subsequent append,
/// rewrite, delete, manifest publish, *and fsync* silently fails —
/// exactly what a kill between two protocol steps leaves on disk.
/// Shared with the whole fault matrix via `ladon::state::faults` (the
/// old test-local `CrashBackend`, promoted to a first-class wrapper);
/// `threaded` routes barriers through the dedicated `ladon-wal-writer`
/// thread (the pipelined-durability path) — the budget cell is shared,
/// so the sweep kills storage at the same op boundaries either way.
fn crash_backend(
    dir: &std::path::Path,
    budget: &Arc<AtomicI64>,
    threaded: bool,
) -> FaultBackend<FileBackend> {
    FaultBackend::kill_budget(
        FileBackend::open_dir(dir).unwrap(),
        budget.clone(),
        threaded,
    )
}

fn scratch_dir(tag: &str, k: i64) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("ladon-{tag}-{}-{k}", std::process::id()))
}

/// A synthetic record whose lane mask walks the lanes (so both lane
/// groups see traffic).
fn raw_record(sn: u64) -> WalRecord {
    WalRecord {
        sn,
        instance: (sn % 4) as u32,
        round: sn / 4 + 1,
        rank: sn,
        first_tx: sn * 10,
        count: 10,
        bucket: 0,
        payload_bytes: 5000,
        lane_mask: 1 << (sn % 64),
        payload_digest: Digest([sn as u8; 32]),
    }
}

/// Append-window matrix: storage dies `k` ops into a run of appends
/// (covering the roll-create → manifest-publish → record-append windows,
/// including the very first append on a fresh WAL). Every record that
/// was acknowledged with a clean durability alarm must survive reopen.
#[test]
fn wal_append_crash_matrix_preserves_acked_records() {
    let opts = WalOptions {
        lane_groups: 2,
        segment_records: 4,
    };
    for k in 0..=24i64 {
        let dir = scratch_dir("append-crash", k);
        let _ = std::fs::remove_dir_all(&dir);
        let budget = Arc::new(AtomicI64::new(k));
        let mut acked = 0u64;
        {
            let backend = crash_backend(&dir, &budget, false);
            let mut wal = CommitWal::open(Box::new(backend), opts);
            for sn in 0..12 {
                wal.append(raw_record(sn));
                if wal.write_failures() == 0 {
                    // Fully durable as far as the WAL reported: nothing
                    // failed through the end of this append.
                    acked = sn + 1;
                }
            }
        }
        let wal = CommitWal::open(Box::new(FileBackend::open_dir(&dir).unwrap()), opts);
        assert!(
            wal.len() as u64 >= acked,
            "k={k}: {acked} records were acked clean but only {} survived",
            wal.len()
        );
        for sn in 0..wal.len() as u64 {
            assert_eq!(wal.records()[sn as usize], raw_record(sn), "k={k}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Record-level matrix: a mid-log compaction (which exercises the
/// straddler rewrite as well as deletes and the manifest publish) is
/// killed after `k` storage ops, for every `k`; reopening with healthy
/// storage must still hold every record past the covered floor, densely.
#[test]
fn wal_compaction_crash_matrix_loses_no_record() {
    let opts = WalOptions {
        lane_groups: 2,
        segment_records: 4,
    };
    let records = 30u64;
    let upto = 18u64; // mid-segment: forces a straddler rewrite
    for k in 0..=16i64 {
        let dir = scratch_dir("wal-crash", k);
        let _ = std::fs::remove_dir_all(&dir);
        let budget = Arc::new(AtomicI64::new(i64::MAX));
        {
            let backend = crash_backend(&dir, &budget, false);
            let mut wal = CommitWal::open(Box::new(backend), opts);
            for sn in 0..records {
                wal.append(raw_record(sn));
            }
            assert_eq!(wal.write_failures(), 0, "k={k}: healthy run must be clean");
            // The power will die k storage ops into the compaction.
            budget.store(k, Ordering::SeqCst);
            wal.compact(upto);
            // Process dies here; whatever reached disk is what recovery
            // gets.
        }
        let wal =
            CommitWal::open_with_floor(Box::new(FileBackend::open_dir(&dir).unwrap()), opts, upto);
        let tail: Vec<u64> = wal.records().iter().map(|r| r.sn).collect();
        let expect: Vec<u64> = (upto..records).collect();
        assert_eq!(
            tail, expect,
            "k={k}: compaction crash lost committed records"
        );
        for sn in upto..records {
            assert_eq!(
                wal.records()[(sn - upto) as usize],
                raw_record(sn),
                "k={k}: record {sn} content changed across the crash"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Pipeline-level matrix: a real epoch checkpoint (durable snapshot,
/// then WAL compaction) is killed after `k` storage ops. Recovery from
/// the surviving artifacts must reproduce the pre-crash frontier and a
/// byte-identical root — at 1 worker and at 4 workers.
#[test]
fn checkpoint_compaction_crash_matrix_recovers_exact_state() {
    let wal_opts = WalOptions {
        lane_groups: 2,
        segment_records: 4,
    };
    let blocks = 16u64;
    for k in 0..=12i64 {
        let dir = scratch_dir("ckpt-crash", k);
        let _ = std::fs::remove_dir_all(&dir);
        let budget = Arc::new(AtomicI64::new(i64::MAX));
        let (pre_root, pre_lane_roots) = {
            let backend = crash_backend(&dir.join("wal"), &budget, false);
            let mut p = ExecutionPipeline::recover_backend(
                &dir,
                Box::new(backend),
                DEFAULT_KEYSPACE,
                1,
                wal_opts,
            )
            .unwrap();
            for sn in 0..blocks {
                p.execute(sn, &common::exec_block(sn, sn * 50, 50));
            }
            assert_eq!(p.wal_write_failures(), 0, "k={k}: run must start clean");
            budget.store(k, Ordering::SeqCst);
            p.checkpoint(0, Vec::new());
            (p.state_root(), p.lane_roots())
        };
        for lanes in LANE_MATRIX {
            let r =
                ExecutionPipeline::recover_opts(&dir, DEFAULT_KEYSPACE, lanes, wal_opts).unwrap();
            assert_eq!(
                r.applied(),
                blocks,
                "k={k} lanes={lanes}: compaction crash lost committed blocks"
            );
            assert_eq!(
                r.state_root(),
                pre_root,
                "k={k} lanes={lanes}: recovered root differs from pre-crash root"
            );
            assert_eq!(
                r.lane_roots(),
                pre_lane_roots,
                "k={k} lanes={lanes}: recovered lane-root vector differs"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// ---------------------------------------------------------------------
// Group-commit crash matrix: the batched write path introduces a new
// boundary — records staged by `append_buffered` are unacknowledged
// until their batch's `flush` barrier returns. The matrices below kill
// storage at every op across that boundary (including between staging
// and flush, and between a flush's write and its fsync) and assert the
// acknowledgement contract: a flushed batch is never lost; a
// staged-but-unflushed batch may be lost but corrupts nothing.
// ---------------------------------------------------------------------

/// WAL-level matrix: batches of 3 records are staged + flushed while the
/// storage dies `k` ops in; a final batch is staged and *never* flushed
/// (the process dies in the stage→flush window). Every record whose
/// flush was acknowledged clean must survive reopen, in order, with
/// nothing corrupted after it.
#[test]
fn wal_group_commit_crash_matrix_preserves_flushed_batches() {
    let opts = WalOptions {
        lane_groups: 2,
        segment_records: 4,
    };
    for k in 0..=28i64 {
        let dir = scratch_dir("group-commit-crash", k);
        let _ = std::fs::remove_dir_all(&dir);
        let budget = Arc::new(AtomicI64::new(k));
        let mut acked = 0u64;
        {
            let backend = crash_backend(&dir, &budget, false);
            let mut wal = CommitWal::open(Box::new(backend), opts);
            let mut sn = 0u64;
            for _batch in 0..5 {
                for _ in 0..3 {
                    wal.append_buffered(raw_record(sn));
                    sn += 1;
                }
                let clean_before = wal.write_failures() == 0;
                wal.flush();
                if clean_before && wal.write_failures() == 0 {
                    // Every barrier up to and including this one reported
                    // success: the whole prefix is durably acknowledged.
                    acked = sn;
                }
            }
            // Stage one more batch and die before its flush: these
            // records were never acknowledged and may vanish.
            wal.append_buffered(raw_record(sn));
            wal.append_buffered(raw_record(sn + 1));
            assert_eq!(wal.staged_len(), 2);
        }
        let wal = CommitWal::open(Box::new(FileBackend::open_dir(&dir).unwrap()), opts);
        assert!(
            wal.len() as u64 >= acked,
            "k={k}: {acked} records were acknowledged by clean flushes \
             but only {} survived",
            wal.len()
        );
        for sn in 0..wal.len() as u64 {
            assert_eq!(
                wal.records()[sn as usize],
                raw_record(sn),
                "k={k}: record {sn} corrupted across the crash"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Cross-drain group-commit matrix (`wal_flush_max_records` semantics):
/// several confirmed-queue drains accumulate as *staged* blocks — WAL
/// records buffered, nothing applied, nothing acknowledged — before one
/// deferred flush makes them durable. The matrix kills storage `k` ops
/// into the run and, for each `k`, also dies once with the accumulation
/// never flushed at all. Staged-but-unflushed records must NEVER be
/// acknowledged: recovery may hold only the flushed prefix, and a clean
/// deferred flush must land every accumulated drain.
#[test]
fn cross_drain_accumulation_crash_matrix_never_acks_unflushed_records() {
    let wal_opts = WalOptions {
        lane_groups: 2,
        segment_records: 4,
    };
    let batch_of = |from: u64, n: u64| -> Vec<(u64, ladon::types::Block)> {
        (from..from + n)
            .map(|sn| (sn, common::exec_block(sn, sn * 50, 50)))
            .collect()
    };
    for flush_staged in [false, true] {
        for k in 0..=14i64 {
            let dir = scratch_dir(
                if flush_staged {
                    "cross-drain-flush"
                } else {
                    "cross-drain-die"
                },
                k,
            );
            let _ = std::fs::remove_dir_all(&dir);
            let budget = Arc::new(AtomicI64::new(i64::MAX));
            let acked = {
                let backend = crash_backend(&dir.join("wal"), &budget, false);
                let mut p = ExecutionPipeline::recover_backend(
                    &dir,
                    Box::new(backend),
                    DEFAULT_KEYSPACE,
                    1,
                    wal_opts,
                )
                .unwrap();
                // A flushed baseline drain, then the storage runs on a
                // budget while three further drains accumulate staged.
                p.execute_batch(&batch_of(0, 4));
                assert_eq!(p.wal_write_failures(), 0, "k={k}: run must start clean");
                budget.store(k, Ordering::SeqCst);
                p.stage_blocks(&batch_of(4, 2));
                p.stage_blocks(&batch_of(6, 2));
                p.stage_blocks(&batch_of(8, 2));
                // Staging does no backend I/O and applies nothing.
                assert_eq!(p.staged_records(), 6, "k={k}");
                assert_eq!(p.applied(), 4, "k={k}: staged blocks must not apply");
                assert_eq!(p.next_sn(), 10, "k={k}");
                if !flush_staged {
                    // Die in the accumulate window: the three drains
                    // were never flushed and must never be acknowledged.
                    4
                } else {
                    p.flush_staged();
                    if p.wal_write_failures() == 0 {
                        assert_eq!(p.applied(), 10, "k={k}: clean flush applies all");
                        10
                    } else {
                        4
                    }
                }
            };
            for lanes in LANE_MATRIX {
                let r = ExecutionPipeline::recover_opts(&dir, DEFAULT_KEYSPACE, lanes, wal_opts)
                    .unwrap();
                assert!(
                    r.applied() >= acked,
                    "k={k} lanes={lanes} flush={flush_staged}: an acknowledged \
                     prefix was lost (recovered {} < acked {acked})",
                    r.applied()
                );
                if !flush_staged {
                    assert_eq!(
                        r.applied(),
                        4,
                        "k={k} lanes={lanes}: unflushed accumulated records \
                         must never be acknowledged"
                    );
                }
                // Whatever survived re-executes to the identical root.
                let mut reference = ExecutionPipeline::in_memory_with(DEFAULT_KEYSPACE, lanes);
                for sn in 0..r.applied() {
                    reference.execute(sn, &common::exec_block(sn, sn * 50, 50));
                }
                assert_eq!(
                    r.state_root(),
                    reference.state_root(),
                    "k={k} lanes={lanes} flush={flush_staged}"
                );
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// Cross-drain group commit end-to-end: a cluster running with an
/// accumulation threshold must agree on every checkpoint root exactly
/// like the per-drain default (epoch checkpoints force the drain), while
/// spending no more fsync barriers.
#[test]
fn cross_drain_threshold_cluster_agrees_and_amortizes_fsyncs() {
    let run = |threshold: u32| {
        let mut c = cluster(ClusterOpts {
            protocol: ProtocolKind::LadonPbft,
            n: 4,
            epoch_length: Some(16),
            submit_until_s: 10.0,
            wal_flush_max_records: Some(threshold),
            ..Default::default()
        });
        c.run_secs(15.0);
        let checked = assert_root_agreement(&c, &[0, 1, 2, 3]);
        assert!(
            checked >= 2,
            "threshold={threshold}: epochs must checkpoint"
        );
        for r in 0..4 {
            let m = &c.node(r).metrics;
            assert_eq!(m.wal_write_failures, 0, "threshold={threshold} replica {r}");
            assert_eq!(m.exec_gaps, 0, "threshold={threshold} replica {r}");
        }
        c.assert_agreement(&[0, 1, 2, 3]);
        let m = &c.node(0).metrics;
        (m.wal_fsyncs, c.node(0).exec.state_root())
    };
    let (fsyncs_default, root_default) = run(1);
    let (fsyncs_batched, root_batched) = run(8);
    assert_eq!(
        root_default, root_batched,
        "the flush threshold must never change state"
    );
    assert!(
        fsyncs_batched <= fsyncs_default,
        "accumulating drains must not cost more barriers: \
         {fsyncs_batched} > {fsyncs_default}"
    );
}

/// Pipeline-level matrix over the batched execution path: confirmed
/// blocks drain through `execute_batch` (stage → one flush barrier →
/// apply) while storage dies `k` ops in. Recovery from the surviving
/// artifacts must hold every block of every cleanly-flushed batch and
/// reproduce, at worker counts {1, 4}, a root byte-identical to a clean
/// re-execution of exactly the recovered prefix.
#[test]
fn batched_execution_crash_matrix_recovers_acked_prefix() {
    let wal_opts = WalOptions {
        lane_groups: 2,
        segment_records: 4,
    };
    let batch_of = |from: u64, n: u64| -> Vec<(u64, ladon::types::Block)> {
        (from..from + n)
            .map(|sn| (sn, common::exec_block(sn, sn * 50, 50)))
            .collect()
    };
    for k in 0..=14i64 {
        let dir = scratch_dir("batched-exec-crash", k);
        let _ = std::fs::remove_dir_all(&dir);
        let budget = Arc::new(AtomicI64::new(i64::MAX));
        let acked = {
            let backend = crash_backend(&dir.join("wal"), &budget, false);
            let mut p = ExecutionPipeline::recover_backend(
                &dir,
                Box::new(backend),
                DEFAULT_KEYSPACE,
                1,
                wal_opts,
            )
            .unwrap();
            // Two clean batches, then the power dies k storage ops into
            // the third batch's stage/flush window.
            p.execute_batch(&batch_of(0, 4));
            p.execute_batch(&batch_of(4, 4));
            assert_eq!(p.wal_write_failures(), 0, "k={k}: run must start clean");
            budget.store(k, Ordering::SeqCst);
            p.execute_batch(&batch_of(8, 4));
            if p.wal_write_failures() == 0 {
                12
            } else {
                8
            }
        };
        let mut roots = Vec::new();
        for lanes in LANE_MATRIX {
            let r =
                ExecutionPipeline::recover_opts(&dir, DEFAULT_KEYSPACE, lanes, wal_opts).unwrap();
            assert!(
                r.applied() >= acked,
                "k={k} lanes={lanes}: an acknowledged batch was lost \
                 (recovered {} < acked {acked})",
                r.applied()
            );
            // The recovered prefix — whatever survived past the ack
            // floor — must re-execute to the identical root.
            let mut reference = ExecutionPipeline::in_memory_with(DEFAULT_KEYSPACE, lanes);
            for sn in 0..r.applied() {
                reference.execute(sn, &common::exec_block(sn, sn * 50, 50));
            }
            assert_eq!(
                r.state_root(),
                reference.state_root(),
                "k={k} lanes={lanes}: recovered root diverges from a clean \
                 re-execution of the recovered prefix"
            );
            roots.push((lanes, r.applied(), r.state_root()));
        }
        assert!(
            roots
                .windows(2)
                .all(|w| (w[0].1, w[0].2) == (w[1].1, w[1].2)),
            "k={k}: recovery differs across worker counts: {roots:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Report-level fault surfacing: a torn WAL tail must show up not just
/// in [`ladon::state::ReplayStats`] but all the way through
/// `NodeMetrics` aggregation into the experiment [`Report`] — the same
/// chain the runner uses — so fault-matrix outcomes are assertable from
/// the top-level document.
#[test]
fn torn_wal_recovery_surfaces_replay_stats_in_report() {
    use ladon::state::{static_lane_mask, TRAILER_LEN};
    use ladon::types::{Block, TimeNs, TxOp};
    use ladon::workload::{aggregate, metrics::empty_nodes, RunData};

    let opts = WalOptions {
        lane_groups: 1,
        segment_records: 4,
    };
    let keyspace = DEFAULT_KEYSPACE;
    let dir = scratch_dir("report-torn", 0);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    {
        let mut wal = CommitWal::open(
            Box::new(FileBackend::open_dir(dir.join("wal")).unwrap()),
            opts,
        );
        for sn in 0..12u64 {
            let b = Block::synthetic(sn, sn * 16, 16);
            let ops: Vec<TxOp> = b.batch.txs(keyspace).map(|tx| tx.op).collect();
            wal.append_buffered(WalRecord::of_block(sn, &b, static_lane_mask(&ops)));
            if sn % 4 == 3 {
                assert!(wal.flush());
            }
        }
        assert_eq!(wal.write_failures(), 0);
    }
    // Tear the newest segment mid-batch (trailer plus a few record
    // bytes): an acknowledged-loss tail, with the prefix intact.
    let mut segs: Vec<std::path::PathBuf> = std::fs::read_dir(dir.join("wal"))
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "seg"))
        .collect();
    segs.sort();
    let victim = segs.last().expect("the run must have produced segments");
    let bytes = std::fs::read(victim).unwrap();
    std::fs::write(victim, &bytes[..bytes.len() - TRAILER_LEN - 7]).unwrap();

    let recovered = ExecutionPipeline::recover_opts(&dir, keyspace, 1, opts).unwrap();
    let stats = recovered.recovery_stats().clone();
    assert!(
        stats.records_torn > 0,
        "the tear must classify as torn loss"
    );
    assert!(stats.records_replayed > 0, "the intact prefix must replay");
    assert!(stats.segments_clean_end > 0, "untouched segments end clean");

    // The same chain the runner uses: pipeline -> NodeMetrics -> Report.
    let mut nodes = empty_nodes(4);
    MultiBftNode::mirror_exec_metrics(&mut nodes[0], &recovered);
    let report = aggregate(&RunData {
        nodes,
        f: 1,
        window_start: TimeNs::ZERO,
        window_end: TimeNs::from_millis(1_000),
        reference: 0,
        waiting_blocks: 0,
    });
    assert_eq!(report.records_torn, stats.records_torn);
    assert_eq!(report.records_unacked_lost, stats.records_unacked_lost);
    assert_eq!(report.records_replayed, stats.records_replayed);
    assert_eq!(report.segments_clean_end, stats.segments_clean_end);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The un-swallowed barrier alarm (the PR 7 bugfix): a failed durability
/// barrier must propagate `PipelinePerf::wal_flush_failures` →
/// `NodeMetrics::wal_flush_failures` → `Report.wal_flush_failures`, in
/// both the inline (simulation) and writer-thread (File) barrier modes.
/// `flush_staged` used to discard the `CommitWal::flush()` outcome
/// entirely and report the drained range as durable; now the range is
/// still returned (the in-memory mirror is authoritative and the blocks
/// apply) but the alarm is raised before any caller can treat it as
/// durable.
#[test]
fn failed_flush_barrier_raises_alarm_through_report() {
    use ladon::types::TimeNs;
    use ladon::workload::{aggregate, metrics::empty_nodes, RunData};

    let wal_opts = WalOptions {
        lane_groups: 2,
        segment_records: 4,
    };
    let batch_of = |from: u64, n: u64| -> Vec<(u64, ladon::types::Block)> {
        (from..from + n)
            .map(|sn| (sn, common::exec_block(sn, sn * 50, 50)))
            .collect()
    };
    for threaded in [false, true] {
        let dir = scratch_dir(
            if threaded {
                "alarm-threaded"
            } else {
                "alarm-inline"
            },
            0,
        );
        let _ = std::fs::remove_dir_all(&dir);
        let budget = Arc::new(AtomicI64::new(i64::MAX));
        let backend = crash_backend(&dir.join("wal"), &budget, threaded);
        let mut p = ExecutionPipeline::recover_backend(
            &dir,
            Box::new(backend),
            DEFAULT_KEYSPACE,
            1,
            wal_opts,
        )
        .unwrap();
        p.execute_batch(&batch_of(0, 4));
        assert_eq!(
            p.perf().wal_flush_failures,
            0,
            "threaded={threaded}: a clean run must not alarm"
        );
        // The disk dies: every write in the next barrier fails.
        budget.store(0, Ordering::SeqCst);
        p.stage_blocks(&batch_of(4, 2));
        let range = p.flush_staged();
        assert_eq!(
            range,
            4..6,
            "threaded={threaded}: the range is still reported"
        );
        assert!(
            p.perf().wal_flush_failures >= 1,
            "threaded={threaded}: the failed barrier must raise the alarm"
        );
        assert!(p.wal_write_failures() > 0, "threaded={threaded}");

        // pipeline → NodeMetrics → Report: the exact chain the runner
        // uses, so fault outcomes are assertable from the top document.
        let mut nodes = empty_nodes(4);
        MultiBftNode::mirror_exec_metrics(&mut nodes[0], &p);
        assert!(
            nodes[0].wal_flush_failures >= 1,
            "threaded={threaded}: NodeMetrics must mirror the alarm"
        );
        let report = aggregate(&RunData {
            nodes,
            f: 1,
            window_start: TimeNs::ZERO,
            window_end: TimeNs::from_millis(1_000),
            reference: 0,
            waiting_blocks: 0,
        });
        assert!(
            report.wal_flush_failures >= 1,
            "threaded={threaded}: a failed barrier must surface as a \
             nonzero Report.wal_flush_failures, never a silently \
             \"durable\" range"
        );
        drop(p);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Writer-thread crash matrix (pipelined durability): storage dies `k`
/// ops into the submit → write → fsync → ack-token window of the
/// dedicated WAL writer, while a further accumulation stages into the
/// double-buffered scratch mid-flight. Sweep contract, at every `k`:
/// no acknowledgement before durability (nothing past a clean-barrier
/// prefix is trusted), the staged-while-in-flight accumulation is never
/// acknowledged, and recovery roots are byte-identical at worker counts
/// {1, 4} and equal a clean re-execution of the recovered prefix.
#[test]
fn writer_thread_crash_matrix_never_acks_before_durability() {
    let wal_opts = WalOptions {
        lane_groups: 2,
        segment_records: 4,
    };
    let batch_of = |from: u64, n: u64| -> Vec<(u64, ladon::types::Block)> {
        (from..from + n)
            .map(|sn| (sn, common::exec_block(sn, sn * 50, 50)))
            .collect()
    };
    for k in 0..=16i64 {
        let dir = scratch_dir("writer-crash", k);
        let _ = std::fs::remove_dir_all(&dir);
        let budget = Arc::new(AtomicI64::new(i64::MAX));
        let acked = {
            let backend = crash_backend(&dir.join("wal"), &budget, true);
            let mut p = ExecutionPipeline::recover_backend(
                &dir,
                Box::new(backend),
                DEFAULT_KEYSPACE,
                1,
                wal_opts,
            )
            .unwrap();
            // A clean pipelined prefix: two overlapped submits, drained.
            p.stage_blocks(&batch_of(0, 2));
            assert!(
                p.submit_staged().is_empty(),
                "k={k}: the first submit has no prior batch to apply"
            );
            p.stage_blocks(&batch_of(2, 2));
            assert_eq!(
                p.submit_staged(),
                0..2,
                "k={k}: the second submit applies batch 1 (whose token resolved)"
            );
            p.flush_staged();
            assert_eq!(p.applied(), 4, "k={k}");
            let perf = p.perf();
            assert_eq!(perf.wal_flush_failures, 0, "k={k}: prefix must be clean");
            assert!(
                perf.pipelined_submits >= 1,
                "k={k}: the prefix must have genuinely overlapped"
            );
            // The budgeted window: batch 3's barrier runs on the writer
            // thread (submit → write → fsync → ack token) with `k` ops of
            // storage life left.
            budget.store(k, Ordering::SeqCst);
            p.stage_blocks(&batch_of(4, 2));
            p.submit_staged();
            // In flight: submitted, not applied, not acknowledged.
            assert_eq!(p.inflight_records(), 2, "k={k}");
            assert_eq!(
                p.applied(),
                4,
                "k={k}: no acknowledgement before the barrier token resolves"
            );
            // Double-buffered staging proceeds while the barrier flies —
            // and this accumulation is never submitted before the crash.
            p.stage_blocks(&batch_of(6, 2));
            assert_eq!(p.staged_records(), 2, "k={k}");
            p.complete_inflight();
            if p.perf().wal_flush_failures == 0 && p.wal_write_failures() == 0 {
                6
            } else {
                4
            }
            // Process dies here: batch 4 (sns 6..8) was never flushed.
        };
        let mut roots = Vec::new();
        for lanes in LANE_MATRIX {
            let r =
                ExecutionPipeline::recover_opts(&dir, DEFAULT_KEYSPACE, lanes, wal_opts).unwrap();
            assert!(
                r.applied() >= acked,
                "k={k} lanes={lanes}: an acknowledged prefix was lost \
                 (recovered {} < acked {acked})",
                r.applied()
            );
            assert!(
                r.applied() <= 6,
                "k={k} lanes={lanes}: the unflushed double-buffered \
                 accumulation must never be acknowledged (recovered {})",
                r.applied()
            );
            let mut reference = ExecutionPipeline::in_memory_with(DEFAULT_KEYSPACE, lanes);
            for sn in 0..r.applied() {
                reference.execute(sn, &common::exec_block(sn, sn * 50, 50));
            }
            assert_eq!(
                r.state_root(),
                reference.state_root(),
                "k={k} lanes={lanes}: recovered root diverges from a clean \
                 re-execution of the recovered prefix"
            );
            roots.push((lanes, r.applied(), r.state_root()));
        }
        assert!(
            roots
                .windows(2)
                .all(|w| (w[0].1, w[0].2) == (w[1].1, w[1].2)),
            "k={k}: recovery differs across worker counts: {roots:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
