//! Epoch state transfer (§5.2.1): a transiently partitioned replica
//! fetches the log entries it missed, proves them against the stable
//! checkpoint, and rejoins the current epoch.

mod common;

use common::{cluster, ClusterOpts};
use ladon::types::ProtocolKind;

/// The partitioned replica misses a window of commits (including an epoch
/// boundary), then catches up via sync and converges with the others.
#[test]
fn partitioned_replica_catches_up_via_state_transfer() {
    let mut c = cluster(ClusterOpts {
        protocol: ProtocolKind::LadonPbft,
        n: 4,
        partitions: vec![(3, 2.0, 6.0)],
        submit_until_s: 25.0,
        ..Default::default()
    });
    c.run_secs(30.0);

    let lagger = c.node(3);
    assert!(
        lagger.metrics.sync_requests > 0,
        "the partitioned replica must detect its lag and request sync"
    );
    assert!(
        lagger.metrics.sync_installed > 0,
        "missed blocks must be installed from a peer's response"
    );
    // It rejoined the epoch schedule.
    assert_eq!(
        lagger.epoch(),
        c.node(0).epoch(),
        "the synced replica must reach the cluster's epoch"
    );
    // Its confirmed log converged: agreement at every shared sn, and its
    // frontier is near the healthy peers' (a snapshot install may leave a
    // gap in its records, but never a lagging frontier).
    c.assert_agreement(&[0, 1, 2, 3]);
    let f0 = c.confirmed_frontier(0);
    let f3 = c.confirmed_frontier(3);
    assert!(
        f3 + 16 >= f0,
        "synced replica's frontier {f3} lags a healthy peer's {f0}"
    );
}

/// Healthy clusters never send sync requests: the lag detector must not
/// misfire at ordinary epoch boundaries.
#[test]
fn no_spurious_sync_requests_when_healthy() {
    let mut c = cluster(ClusterOpts {
        protocol: ProtocolKind::LadonPbft,
        n: 4,
        submit_until_s: 15.0,
        ..Default::default()
    });
    c.run_secs(20.0);
    assert!(
        c.node(0).metrics.epochs.len() > 1,
        "the run must cross at least one epoch boundary to be meaningful"
    );
    let total: u64 = (0..4).map(|r| c.node(r).metrics.sync_requests).sum();
    assert_eq!(total, 0, "healthy replicas must not request state transfer");
}

/// Sync also repairs a replica that missed traffic *within* one epoch
/// (no boundary crossed): the checkpoint-quorum evidence path.
#[test]
fn intra_epoch_holes_block_confirmation_until_synced() {
    let mut c = cluster(ClusterOpts {
        protocol: ProtocolKind::LadonPbft,
        n: 4,
        partitions: vec![(1, 1.0, 3.0)],
        submit_until_s: 20.0,
        ..Default::default()
    });
    c.run_secs(25.0);
    // Replica 1's log repaired: agreement holds and it kept confirming.
    c.assert_agreement(&[0, 1, 2, 3]);
    let f0 = c.confirmed_frontier(0);
    let f1 = c.confirmed_frontier(1);
    assert!(
        f1 + 16 >= f0,
        "repaired replica's frontier {f1} lags a healthy peer's {f0}"
    );
}

/// Random 1 % message loss (the paper assumes reliable links; this is a
/// robustness check): every lost vote or proposal eventually surfaces as
/// a persistent proposal-vs-commit gap at some replica, and state
/// transfer repairs it — the cluster converges anyway.
#[test]
fn random_message_loss_repaired_by_state_transfer() {
    let mut c = cluster(ClusterOpts {
        protocol: ProtocolKind::LadonPbft,
        n: 4,
        loss_probability: 0.01,
        submit_until_s: 25.0,
        ..Default::default()
    });
    c.run_secs(35.0);
    c.assert_agreement(&[0, 1, 2, 3]);
    let fronts: Vec<u64> = (0..4).map(|r| c.confirmed_frontier(r)).collect();
    let max = *fronts.iter().max().unwrap();
    let min = *fronts.iter().min().unwrap();
    assert!(
        max > 100,
        "the run must make substantial progress: {fronts:?}"
    );
    assert!(
        min + 32 >= max,
        "all replicas must stay near the confirmed frontier: {fronts:?}"
    );
}
