//! Epoch state transfer (§5.2.1): a transiently partitioned replica
//! fetches the log entries it missed, proves them against the stable
//! checkpoint, and rejoins the current epoch.

mod common;

use common::{cluster, ClusterOpts};
use ladon::types::ProtocolKind;

/// The partitioned replica misses a window of commits (including an epoch
/// boundary), then catches up via sync and converges with the others.
#[test]
fn partitioned_replica_catches_up_via_state_transfer() {
    let mut c = cluster(ClusterOpts {
        protocol: ProtocolKind::LadonPbft,
        n: 4,
        partitions: vec![(3, 2.0, 6.0)],
        submit_until_s: 25.0,
        ..Default::default()
    });
    c.run_secs(30.0);

    let lagger = c.node(3);
    assert!(
        lagger.metrics.sync_requests > 0,
        "the partitioned replica must detect its lag and request sync"
    );
    assert!(
        lagger.metrics.sync_installed > 0,
        "missed blocks must be installed from a peer's response"
    );
    // It rejoined the epoch schedule.
    assert_eq!(
        lagger.epoch(),
        c.node(0).epoch(),
        "the synced replica must reach the cluster's epoch"
    );
    // Its confirmed log converged: agreement at every shared sn, and its
    // frontier is near the healthy peers' (a snapshot install may leave a
    // gap in its records, but never a lagging frontier).
    c.assert_agreement(&[0, 1, 2, 3]);
    let f0 = c.confirmed_frontier(0);
    let f3 = c.confirmed_frontier(3);
    assert!(
        f3 + 16 >= f0,
        "synced replica's frontier {f3} lags a healthy peer's {f0}"
    );
}

/// Healthy clusters never send sync requests: the lag detector must not
/// misfire at ordinary epoch boundaries.
#[test]
fn no_spurious_sync_requests_when_healthy() {
    let mut c = cluster(ClusterOpts {
        protocol: ProtocolKind::LadonPbft,
        n: 4,
        submit_until_s: 15.0,
        ..Default::default()
    });
    c.run_secs(20.0);
    assert!(
        c.node(0).metrics.epochs.len() > 1,
        "the run must cross at least one epoch boundary to be meaningful"
    );
    let total: u64 = (0..4).map(|r| c.node(r).metrics.sync_requests).sum();
    assert_eq!(total, 0, "healthy replicas must not request state transfer");
}

/// Sync also repairs a replica that missed traffic *within* one epoch
/// (no boundary crossed): the checkpoint-quorum evidence path.
#[test]
fn intra_epoch_holes_block_confirmation_until_synced() {
    let mut c = cluster(ClusterOpts {
        protocol: ProtocolKind::LadonPbft,
        n: 4,
        partitions: vec![(1, 1.0, 3.0)],
        submit_until_s: 20.0,
        ..Default::default()
    });
    c.run_secs(25.0);
    // Replica 1's log repaired: agreement holds and it kept confirming.
    c.assert_agreement(&[0, 1, 2, 3]);
    let f0 = c.confirmed_frontier(0);
    let f1 = c.confirmed_frontier(1);
    assert!(
        f1 + 16 >= f0,
        "repaired replica's frontier {f1} lags a healthy peer's {f0}"
    );
}

/// Random 1 % message loss (the paper assumes reliable links; this is a
/// robustness check): every lost vote or proposal eventually surfaces as
/// a persistent proposal-vs-commit gap at some replica, and state
/// transfer repairs it — the cluster converges anyway.
#[test]
fn random_message_loss_repaired_by_state_transfer() {
    let mut c = cluster(ClusterOpts {
        protocol: ProtocolKind::LadonPbft,
        n: 4,
        loss_probability: 0.01,
        submit_until_s: 25.0,
        ..Default::default()
    });
    c.run_secs(35.0);
    c.assert_agreement(&[0, 1, 2, 3]);
    let fronts: Vec<u64> = (0..4).map(|r| c.confirmed_frontier(r)).collect();
    let max = *fronts.iter().max().unwrap();
    let min = *fronts.iter().min().unwrap();
    assert!(
        max > 100,
        "the run must make substantial progress: {fronts:?}"
    );
    assert!(
        min + 32 >= max,
        "all replicas must stay near the confirmed frontier: {fronts:?}"
    );
}

// ---------------------------------------------------------------------
// Chunked delta state sync: per-lane chunks verify independently against
// the quorum-proved head, so a Byzantine responder corrupts at most its
// own chunks, and a crash mid-transfer loses nothing that already
// verified. Both properties are driven through the real node
// request/response handlers, no network in between.
// ---------------------------------------------------------------------

use ladon::core::{Behavior, MultiBftNode, NodeConfig, NodeMsg};
use ladon::sim::{ActorId, Context, SimRng};
use ladon::state::ExecutionPipeline;
use ladon::types::{ReplicaId, TimeNs};

/// Minimal context for driving node handlers directly: records outgoing
/// messages, ignores timers.
struct DirectCtx {
    rng: SimRng,
    sent: Vec<(ActorId, NodeMsg)>,
}

impl DirectCtx {
    fn new() -> Self {
        Self {
            rng: SimRng::new(7),
            sent: Vec::new(),
        }
    }

    /// Targets of the sync requests captured so far.
    fn sync_req_targets(&self) -> Vec<ActorId> {
        self.sent
            .iter()
            .filter(|(_, m)| matches!(m, NodeMsg::SyncReq(_)))
            .map(|&(to, _)| to)
            .collect()
    }
}

impl Context<NodeMsg> for DirectCtx {
    fn now(&self) -> TimeNs {
        TimeNs(0)
    }
    fn self_id(&self) -> ActorId {
        3
    }
    fn send_sized(&mut self, to: ActorId, msg: NodeMsg, _bytes: u64) {
        self.sent.push((to, msg));
    }
    fn set_timer(&mut self, _delay: TimeNs, _id: u64) {}
    fn crash(&mut self, _actor: ActorId) {}
    fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }
}

fn from_zero_node(c: &common::TestCluster, sys: ladon::types::SystemConfig) -> MultiBftNode {
    MultiBftNode::new(NodeConfig {
        sys,
        protocol: c.protocol,
        me: ReplicaId(3),
        registry: c.registry.clone(),
        behavior: Behavior::default(),
        sample_interval: None,
    })
}

/// A Byzantine responder serves chunks whose payload does not match the
/// lane root it claims. Each bad chunk is rejected individually — the
/// clean chunks from the same response stay stashed — and the retry
/// fetches only what is still missing before installing.
#[test]
fn byzantine_chunks_rejected_per_chunk_without_discarding_verified_ones() {
    let mut c = cluster(ClusterOpts {
        protocol: ProtocolKind::LadonPbft,
        n: 4,
        epoch_length: Some(16),
        submit_until_s: 12.0,
        ..Default::default()
    });
    c.run_secs(15.0);
    let responder = c.node(0);
    let snap = responder
        .exec
        .latest_snapshot()
        .expect("responder must have checkpointed")
        .clone();

    let mut requester = from_zero_node(&c, c.sys.clone());
    let mut ctx = DirectCtx::new();
    let req = requester.build_sync_request();
    let honest = responder
        .build_sync_response(&req)
        .expect("a from-zero requester must be served");
    assert!(honest.snapshot.is_some());
    let total = honest.chunks.len();
    assert!(total > 2, "need several chunks to corrupt some of them");

    // Tamper every other chunk's payload; lane label and claimed root
    // stay intact, so only per-chunk content verification can catch it.
    let mut byz = honest.clone();
    byz.entries.clear();
    let mut tampered = 0;
    for chunk in byz.chunks.iter_mut().skip(1).step_by(2) {
        if let Some(e) = chunk.entries.first_mut() {
            e.1 ^= 1;
            tampered += 1;
        }
    }
    assert!(tampered > 0);
    requester.on_sync_response(byz, &mut ctx);
    assert_eq!(
        requester.metrics.snapshot_installs, 0,
        "an incomplete chunk set must not install"
    );
    assert_eq!(
        requester.exec.stashed_chunk_count(),
        total - tampered,
        "every clean chunk must survive the Byzantine ones' rejection"
    );
    assert_eq!(requester.exec.applied(), 0);

    // Retry with the refreshed advertisement: the responder now serves
    // only the lanes the stash does not already cover.
    let req2 = requester.build_sync_request();
    let mut resp2 = responder
        .build_sync_response(&req2)
        .expect("retry must be served");
    // Keep the exchange on the snapshot path: log entries would repair
    // the tail and move the root past the snapshot's.
    resp2.entries.clear();
    assert!(
        resp2.chunks.len() < total,
        "retry must not re-ship already-verified chunks"
    );
    for chunk in &resp2.chunks {
        assert!(
            requester.exec.stashed_chunk(&chunk.root).is_none(),
            "lane {} was already stashed yet got re-served",
            chunk.lane
        );
    }
    requester.on_sync_response(resp2, &mut ctx);
    assert_eq!(requester.metrics.snapshot_installs, 1);
    assert_eq!(
        requester.exec.lane_roots(),
        snap.lane_roots,
        "delta-synced lane roots must be byte-identical to the snapshot's"
    );
    assert_eq!(requester.exec.applied(), snap.applied);
    assert_eq!(
        requester.exec.stashed_chunk_count(),
        0,
        "the stash must be cleared once the install lands"
    );
    assert_eq!(requester.metrics.skipped_sns, snap.applied);
}

/// Capped transfers resume: a response carrying `chunks_remaining > 0`
/// triggers an immediate follow-up request with an advanced cursor, and
/// round-robin targeting rotates the follow-ups across peers — a
/// responder that keeps serving garbage is simply left behind.
#[test]
fn partial_chunk_responses_trigger_cursor_resume_and_peer_rotation() {
    let mut c = cluster(ClusterOpts {
        protocol: ProtocolKind::LadonPbft,
        n: 4,
        epoch_length: Some(16),
        submit_until_s: 12.0,
        ..Default::default()
    });
    c.run_secs(15.0);
    let responder = c.node(0);
    assert!(responder.exec.latest_snapshot().is_some());

    let mut sys = c.sys.clone();
    sys.sync_chunks_per_response = 8;
    let mut requester = from_zero_node(&c, sys);
    let mut ctx = DirectCtx::new();
    let req = requester.build_sync_request();
    assert_eq!(req.chunk_cursor, 0);
    let full = responder.build_sync_response(&req).expect("served");
    assert!(full.chunks.len() > 2);

    // Simulate a capped responder: ship one chunk, declare the rest
    // outstanding.
    let mut partial = full.clone();
    partial.entries.clear();
    let rest = partial.chunks.split_off(1);
    partial.chunks_remaining = rest.len() as u32;
    requester.on_sync_response(partial, &mut ctx);
    assert_eq!(requester.metrics.snapshot_installs, 0);
    assert_eq!(requester.exec.stashed_chunk_count(), 1);
    let targets = ctx.sync_req_targets();
    assert_eq!(
        targets.len(),
        1,
        "a partial response must trigger an immediate follow-up request"
    );
    let NodeMsg::SyncReq(follow_up) = &ctx.sent[0].1 else {
        panic!("captured message must be the follow-up request");
    };
    assert_eq!(
        follow_up.chunk_cursor, 8,
        "the follow-up must resume past the served window (cursor += cap)"
    );

    // A second partial response: the next follow-up rotates to another
    // peer.
    let mut partial2 = full.clone();
    partial2.entries.clear();
    partial2.chunks = rest[..1].to_vec();
    partial2.chunks_remaining = (rest.len() - 1) as u32;
    requester.on_sync_response(partial2, &mut ctx);
    assert_eq!(requester.exec.stashed_chunk_count(), 2);
    let targets = ctx.sync_req_targets();
    assert_eq!(targets.len(), 2);
    assert_ne!(
        targets[0], targets[1],
        "follow-up requests must rotate round-robin across peers"
    );
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("ladon-{tag}-{}", std::process::id()))
}

/// Crash in the middle of a chunked install: verified chunks persist in
/// the content-addressed stash, a restarted process reloads and
/// re-verifies them, and the resumed transfer fetches only the missing
/// lanes. Run at execution-worker counts {1, 4}; the delta-synced final
/// roots must be byte-identical to the responder's snapshot root.
fn resume_after_crash_at(lanes: u32) -> ladon::types::Digest {
    let mut c = cluster(ClusterOpts {
        protocol: ProtocolKind::LadonPbft,
        n: 4,
        epoch_length: Some(16),
        submit_until_s: 12.0,
        exec_lanes: Some(lanes),
        ..Default::default()
    });
    c.run_secs(15.0);
    let responder = c.node(0);
    let snap = responder
        .exec
        .latest_snapshot()
        .expect("responder must have checkpointed")
        .clone();

    let dir = scratch_dir(&format!("chunk-resume-{lanes}"));
    let _ = std::fs::remove_dir_all(&dir);
    let exec = ExecutionPipeline::recover_with(&dir, c.sys.exec_keyspace, lanes)
        .expect("durable pipeline");
    let mut requester = MultiBftNode::with_execution(
        NodeConfig {
            sys: c.sys.clone(),
            protocol: c.protocol,
            me: ReplicaId(3),
            registry: c.registry.clone(),
            behavior: Behavior::default(),
            sample_interval: None,
        },
        exec,
    );
    let mut ctx = DirectCtx::new();

    let req = requester.build_sync_request();
    let full = responder.build_sync_response(&req).expect("served");
    let total = full.chunks.len();
    assert!(total > 2);

    // Half the chunks arrive, then the process dies.
    let keep = total / 2;
    let mut partial = full.clone();
    partial.entries.clear();
    partial.chunks.truncate(keep);
    partial.chunks_remaining = (total - keep) as u32;
    requester.on_sync_response(partial, &mut ctx);
    assert_eq!(requester.metrics.snapshot_installs, 0);
    assert_eq!(requester.exec.stashed_chunk_count(), keep);
    drop(requester);

    // Restart from the same directory: the stash is reloaded from its
    // content-addressed files and re-verified, nothing decode-failed.
    let exec = ExecutionPipeline::recover_with(&dir, c.sys.exec_keyspace, lanes)
        .expect("recovery must succeed");
    assert_eq!(
        exec.stashed_chunk_count(),
        keep,
        "lanes={lanes}: verified chunks must survive the crash"
    );
    assert_eq!(exec.snapshot_decode_failures(), 0);
    let mut requester = MultiBftNode::with_execution(
        NodeConfig {
            sys: c.sys.clone(),
            protocol: c.protocol,
            me: ReplicaId(3),
            registry: c.registry.clone(),
            behavior: Behavior::default(),
            sample_interval: None,
        },
        exec,
    );

    // Resume: only the missing chunks travel.
    let req2 = requester.build_sync_request();
    let mut resp2 = responder.build_sync_response(&req2).expect("served");
    // Snapshot path only: log entries would execute the tail and move
    // the root past the snapshot's.
    resp2.entries.clear();
    assert_eq!(
        resp2.chunks.len(),
        total - keep,
        "lanes={lanes}: the resumed transfer must fetch only missing chunks"
    );
    for chunk in &resp2.chunks {
        assert!(requester.exec.stashed_chunk(&chunk.root).is_none());
    }
    requester.on_sync_response(resp2, &mut ctx);
    assert_eq!(requester.metrics.snapshot_installs, 1, "lanes={lanes}");
    assert_eq!(
        requester.exec.lane_roots(),
        snap.lane_roots,
        "lanes={lanes}: resumed delta install must reproduce the \
         snapshot's lane roots byte-identically"
    );
    assert_eq!(requester.exec.stashed_chunk_count(), 0);
    let root = requester.exec.state_root();
    drop(requester);
    let _ = std::fs::remove_dir_all(&dir);
    root
}

#[test]
fn interrupted_chunked_install_resumes_from_stash_across_lane_counts() {
    let roots: Vec<(u32, ladon::types::Digest)> = [1u32, 4]
        .iter()
        .map(|&l| (l, resume_after_crash_at(l)))
        .collect();
    assert!(
        roots.windows(2).all(|w| w[0].1 == w[1].1),
        "crash-resume delta sync: final roots differ across lane counts: {roots:?}"
    );
}
