//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! this minimal property-testing harness with the subset of proptest's API
//! the test suite uses: the [`proptest!`] macro, [`Strategy`] with
//! `prop_map` / `prop_flat_map`, [`any`], [`Just`], integer-range
//! strategies, [`collection::vec`] and [`collection::btree_set`], and the
//! `prop_assert*` / `prop_assume` macros.
//!
//! Sampling is purely random (no shrinking): each test function derives a
//! deterministic RNG from its own name, so failures reproduce exactly
//! across runs and machines. Case counts default to 64 and can be raised
//! with the `PROPTEST_CASES` environment variable or pinned per block with
//! `#![proptest_config(ProptestConfig::with_cases(n))]`.

use std::collections::BTreeSet;
use std::ops::Range;

/// Per-block configuration (mirrors `proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        Self { cases }
    }
}

/// Deterministic splitmix64 generator seeded from the test name.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG whose stream is a pure function of `name`.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name, xored into a fixed golden seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self {
            state: h ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift; bias is irrelevant for test sampling.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A value generator (mirrors `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Samples one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a full-range default strategy (mirrors `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Samples an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The unconstrained strategy for `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

/// Collection size specification: an exact length or a half-open range.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        Self {
            lo: r.start,
            hi: r.end.max(r.start + 1),
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi - self.lo) as u64) as usize
    }
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::*;

    /// Strategy for `Vec<S::Value>` with a sampled length.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Generates vectors of `elem` values with length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let want = self.size.sample(rng);
            let mut out = BTreeSet::new();
            // Bounded retries: duplicates shrink the set, as in proptest.
            for _ in 0..want.saturating_mul(4).max(8) {
                if out.len() >= want {
                    break;
                }
                out.insert(self.elem.generate(rng));
            }
            out
        }
    }

    /// Generates sets of `elem` values with target size drawn from `size`.
    pub fn btree_set<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }
}

/// Everything a test module needs (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    // A closure so `prop_assume!` can skip the case with
                    // `return` without ending the whole test.
                    let __run = move || { $body };
                    __run();
                }
            }
        )*
    };
}

/// Asserts a property-level condition (no shrinking: panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property-level `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property-level `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        let mut c = crate::TestRng::for_test("y");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_lengths_respect_size(v in collection::vec(any::<u8>(), 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
        }

        #[test]
        fn flat_map_threads_dependencies(
            (len, v) in (1usize..8).prop_flat_map(|n| (Just(n), collection::vec(0u32..10, n))),
        ) {
            prop_assert_eq!(v.len(), len);
        }

        #[test]
        fn assume_skips(x in any::<u64>()) {
            prop_assume!(x.is_multiple_of(2));
            prop_assert_eq!(x % 2, 0);
        }
    }
}
