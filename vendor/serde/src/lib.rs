//! Offline stand-in for the `serde` facade crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this minimal shim instead of the real `serde`. It
//! defines the two marker traits and re-exports the derive macros from
//! [`serde_derive`], which expand to nothing. That is sufficient for this
//! workspace: types annotate `#[derive(Serialize, Deserialize)]` to declare
//! wire-format intent, but no code path performs format-generic
//! serialization — durable state (`ladon-state`) uses its own explicit,
//! versioned binary codec, which a write-ahead log wants anyway.
//!
//! Swapping in the real `serde` later is a one-line change in the root
//! `Cargo.toml` (`[patch]` the path away); no source file needs to change.

/// Marker trait mirroring `serde::Serialize`.
///
/// No-op in this shim: nothing in the workspace is generic over it.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}

/// Marker trait mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Mirrors `serde::de` far enough for `use serde::de::DeserializeOwned`.
pub mod de {
    pub use crate::DeserializeOwned;
}
