//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for the
//! vendored serde shim (see `vendor/serde`). The derives expand to an empty
//! token stream: the shim's traits are pure markers and nothing in the
//! workspace requires an implementation to exist.

use proc_macro::TokenStream;

/// Expands to nothing; satisfies `#[derive(Serialize)]` syntactically.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; satisfies `#[derive(Deserialize)]` syntactically.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
